//! # mkss-workload
//!
//! Random (m,k)-firm task-set generation replicating the evaluation setup
//! of *Niu & Zhu, DATE 2020*, Section V:
//!
//! * 5 to 10 tasks per set;
//! * periods uniform in `[5, 50] ms`;
//! * `k_i` uniform in `[2, 20]`, `m_i` uniform in `(0, k_i)`;
//! * WCETs uniformly distributed and scaled so the total
//!   (m,k)-utilization `Σ mᵢCᵢ/(kᵢPᵢ)` hits a target value;
//! * the (m,k)-utilization axis divided into intervals of width 0.1, each
//!   populated with at least 20 task sets *schedulable under the
//!   R-pattern* or abandoned after 5000 generated sets.
//!
//! Generation is fully deterministic given the seed.
//!
//! ## Example
//!
//! ```
//! use mkss_workload::{Generator, WorkloadConfig};
//!
//! let mut generator = Generator::new(WorkloadConfig::paper(), 42);
//! let ts = generator.schedulable_set(0.45).expect("0.45 is feasible");
//! assert!((ts.mk_utilization() - 0.45).abs() < 0.01);
//! assert!(mkss_analysis::rta::is_schedulable_r_pattern(&ts));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mkss_analysis::rta::is_schedulable_r_pattern;
use mkss_core::mk::MkConstraint;
use mkss_core::task::{Task, TaskSet};
use mkss_core::time::{Time, TICKS_PER_MS};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How worst-case execution times are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: the two WCET draws the experiments compare; generators match exhaustively
pub enum WcetModel {
    /// Uniform random weights scaled so the set's (m,k)-utilization hits
    /// the requested target exactly. Efficient (every draw lands in its
    /// bucket) and produces "balanced" sets.
    Scaled,
    /// WCETs drawn uniformly in `(0, D]`, as the paper's Section V
    /// describes ("the worst case execution time of a task was assumed
    /// to be uniformly distributed"); sets are then *binned* by their
    /// resulting (m,k)-utilization. Matches the paper's generation
    /// procedure; full utilizations are much higher at equal
    /// (m,k)-utilization, which is what starves the dual-priority
    /// baseline of promotion slack.
    #[default]
    UniformRaw,
}

/// Parameters of the random task-set generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Minimum number of tasks per set.
    pub tasks_min: usize,
    /// Maximum number of tasks per set (inclusive).
    pub tasks_max: usize,
    /// Period range in whole milliseconds (inclusive).
    pub period_ms: (u64, u64),
    /// Range of `k` (inclusive); `m` is uniform in `1..k`.
    pub k_range: (u32, u32),
    /// Cap on generation attempts per requested set before giving up.
    pub max_attempts: u32,
    /// WCET drawing model.
    pub wcet_model: WcetModel,
    /// When set, periods are drawn from powers of two inside `period_ms`
    /// and `k` from powers of two inside `k_range`, keeping the pattern
    /// hyperperiod `LCM(kᵢPᵢ)` small enough for exact hyperperiod
    /// analyses (used by the pattern-rotation experiment).
    pub pow2_harmonics: bool,
}

impl WorkloadConfig {
    /// The paper's Section V parameters.
    pub fn paper() -> Self {
        WorkloadConfig {
            tasks_min: 5,
            tasks_max: 10,
            period_ms: (5, 50),
            k_range: (2, 20),
            max_attempts: 5_000,
            wcet_model: WcetModel::UniformRaw,
            pow2_harmonics: false,
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper()
    }
}

/// A deterministic random task-set generator.
#[derive(Debug, Clone)]
pub struct Generator {
    config: WorkloadConfig,
    rng: ChaCha8Rng,
}

impl Generator {
    /// Creates a generator with the given config and seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        Generator {
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Generates one raw task set with total (m,k)-utilization
    /// `target_util` (no schedulability filtering). Returns `None` if the
    /// drawn parameters cannot realize the target (e.g. a WCET would
    /// exceed its deadline); callers typically just retry.
    ///
    /// WCETs are drawn via uniform random weights (the "uniformly
    /// distributed WCET" of Section V) and scaled so that
    /// `Σ mᵢCᵢ/(kᵢPᵢ) = target_util` exactly (up to tick rounding).
    /// Deadlines equal periods (the paper's examples use `D ≤ P`; its
    /// generator does not mention separate deadlines).
    ///
    /// # Panics
    ///
    /// Panics if `target_util` is not in `(0, 1]`.
    pub fn raw_set(&mut self, target_util: f64) -> Option<TaskSet> {
        assert!(
            target_util > 0.0 && target_util <= 1.0,
            "target (m,k)-utilization must be in (0, 1], got {target_util}"
        );
        let n = self
            .rng
            .gen_range(self.config.tasks_min..=self.config.tasks_max);
        let mut periods = Vec::with_capacity(n);
        let mut mks = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            let p = if self.config.pow2_harmonics {
                pow2_in_u64(&mut self.rng, self.config.period_ms)
            } else {
                self.rng
                    .gen_range(self.config.period_ms.0..=self.config.period_ms.1)
            };
            let k = if self.config.pow2_harmonics {
                pow2_in_u32(&mut self.rng, self.config.k_range).max(2)
            } else {
                self.rng
                    .gen_range(self.config.k_range.0..=self.config.k_range.1)
            };
            let m = self.rng.gen_range(1..k);
            let w: f64 = self.rng.gen_range(0.05..1.0);
            periods.push(p);
            // mkss-lint: allow(no-unwrap-in-lib) — m is drawn from gen_range(1..k), so 1 ≤ m < k always holds
            mks.push(MkConstraint::new(m, k).expect("1 <= m < k by construction"));
            weights.push(w);
        }
        // Per-task (m,k)-utilization shares under the two WCET models;
        // both are normalized so the set's total hits `target_util`.
        let shares: Vec<f64> = match self.config.wcet_model {
            WcetModel::Scaled => {
                // Shares proportional to the raw weights.
                let sum = mkss_core::fold::sum_f64(&weights);
                weights.iter().map(|w| w / sum).collect()
            }
            WcetModel::UniformRaw => {
                // Draw C ~ U(0, P] (the weight is the fraction of the
                // period), then rescale everything uniformly: the WCET
                // *composition* is the paper's uniform draw.
                let contributions: Vec<f64> = (0..n)
                    .map(|i| f64::from(mks[i].m()) / f64::from(mks[i].k()) * weights[i])
                    .collect();
                let sum = mkss_core::fold::sum_f64(&contributions);
                contributions.iter().map(|c| c / sum).collect()
            }
        };
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let share = target_util * shares[i];
            // C = share * (k/m) * P.
            let c_ms = share * f64::from(mks[i].k()) / f64::from(mks[i].m()) * periods[i] as f64;
            let c_ticks = (c_ms * TICKS_PER_MS as f64).round() as u64;
            if c_ticks == 0 {
                return None;
            }
            let period = Time::from_ms(periods[i]);
            let wcet = Time::from_ticks(c_ticks);
            if wcet > period {
                return None;
            }
            let task = Task::with_constraint(period, period, wcet, mks[i]).ok()?;
            tasks.push(task);
        }
        // Priority = index order; sort by period for a rate-monotonic-like
        // assignment (the paper assumes priorities are given).
        tasks.sort_by_key(Task::period);
        TaskSet::new(tasks).ok()
    }

    /// Generates one raw task set with a target (m,k)-utilization drawn
    /// uniformly from `[lo, hi)` — the per-bucket draw of Section V.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or outside `(0, 1]`.
    pub fn raw_set_in(&mut self, lo: f64, hi: f64) -> Option<TaskSet> {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        let target = self.rng.gen_range(lo..hi);
        self.raw_set(target)
    }

    /// Generates a task set with `target_util` that passes the R-pattern
    /// schedulability test, retrying up to
    /// [`WorkloadConfig::max_attempts`] times.
    ///
    /// # Panics
    ///
    /// Panics if `target_util` is not in `(0, 1]`.
    pub fn schedulable_set(&mut self, target_util: f64) -> Option<TaskSet> {
        for _ in 0..self.config.max_attempts {
            if let Some(ts) = self.raw_set(target_util) {
                if is_schedulable_r_pattern(&ts) {
                    return Some(ts);
                }
            }
        }
        None
    }
}

/// Uniformly draws a power of two inside `[range.0, range.1]`.
fn pow2_in_u64(rng: &mut ChaCha8Rng, range: (u64, u64)) -> u64 {
    let choices: Vec<u64> = (0..63)
        .map(|e| 1u64 << e)
        .filter(|&v| v >= range.0 && v <= range.1)
        .collect();
    assert!(
        !choices.is_empty(),
        "no power of two inside [{}, {}]",
        range.0,
        range.1
    );
    choices[rng.gen_range(0..choices.len())]
}

/// Uniformly draws a power of two inside `[range.0, range.1]`.
fn pow2_in_u32(rng: &mut ChaCha8Rng, range: (u32, u32)) -> u32 {
    pow2_in_u64(rng, (u64::from(range.0), u64::from(range.1))) as u32
}

/// One (m,k)-utilization interval of the evaluation's x-axis, populated
/// with schedulable task sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound of the interval.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
    /// Schedulable task sets with (m,k)-utilization inside the interval.
    pub sets: Vec<TaskSet>,
    /// Total sets generated (schedulable or not) while filling the
    /// bucket.
    pub generated: u64,
}

impl Bucket {
    /// Midpoint of the interval (the x-coordinate used in plots).
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Configuration for [`generate_buckets`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketPlan {
    /// Lower bound of the first bucket.
    pub from: f64,
    /// Upper bound of the last bucket.
    pub to: f64,
    /// Bucket width (the paper uses 0.1).
    pub width: f64,
    /// Schedulable sets wanted per bucket (the paper uses ≥ 20).
    pub sets_per_bucket: usize,
    /// Generation cap per bucket (the paper uses 5000).
    pub max_generated: u64,
}

impl Default for BucketPlan {
    /// The paper's plan: width-0.1 intervals over `[0.1, 0.9)` with 20
    /// schedulable sets or 5000 attempts each.
    fn default() -> Self {
        BucketPlan {
            from: 0.1,
            to: 0.9,
            width: 0.1,
            sets_per_bucket: 20,
            max_generated: 5_000,
        }
    }
}

/// Fills every interval of `plan` with schedulable task sets, drawing the
/// target utilization uniformly inside each interval (Section V's
/// bucketing procedure). Deterministic given `seed`.
///
/// ```
/// use mkss_workload::{generate_buckets, BucketPlan, WorkloadConfig};
///
/// let plan = BucketPlan { sets_per_bucket: 3, ..BucketPlan::default() };
/// let buckets = generate_buckets(WorkloadConfig::paper(), plan, 7);
/// assert_eq!(buckets.len(), 8); // [0.1,0.2) … [0.8,0.9)
/// for b in &buckets {
///     for ts in &b.sets {
///         let u = ts.mk_utilization();
///         assert!(u >= b.lo - 0.01 && u < b.hi + 0.01);
///     }
/// }
/// ```
pub fn generate_buckets(config: WorkloadConfig, plan: BucketPlan, seed: u64) -> Vec<Bucket> {
    generate_buckets_jobs(config, plan, seed, 1)
}

/// The interval bounds `[lo, hi)` of every bucket in `plan`, in order.
#[must_use]
pub fn bucket_bounds(plan: BucketPlan) -> Vec<(f64, f64)> {
    let mut bounds = Vec::new();
    let mut lo = plan.from;
    while lo + plan.width <= plan.to + 1e-9 {
        bounds.push((lo, lo + plan.width));
        lo += plan.width;
    }
    bounds
}

/// [`generate_buckets`] with the buckets filled in parallel by up to
/// `jobs` worker threads (`0` = available parallelism). Each bucket draws
/// from its own seed-derived RNG stream, so the output is bit-identical
/// to the serial path for any worker count.
pub fn generate_buckets_jobs(
    config: WorkloadConfig,
    plan: BucketPlan,
    seed: u64,
    jobs: usize,
) -> Vec<Bucket> {
    let bounds = bucket_bounds(plan);
    mkss_core::par::map_indexed(jobs, &bounds, |bucket_index, &(lo, hi)| {
        // Independent stream per bucket so buckets are stable regardless
        // of how many attempts earlier buckets consumed.
        let mut generator =
            Generator::new(config, seed.wrapping_add(bucket_index as u64 * 0x9e37_79b9));
        let mut sets = Vec::new();
        let mut generated = 0u64;
        while sets.len() < plan.sets_per_bucket && generated < plan.max_generated {
            let target = generator.rng.gen_range(lo..hi);
            generated += 1;
            if let Some(ts) = generator.raw_set(target) {
                if is_schedulable_r_pattern(&ts) {
                    sets.push(ts);
                }
            }
        }
        Bucket {
            lo,
            hi,
            sets,
            generated,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_set_hits_target_utilization() {
        let mut g = Generator::new(WorkloadConfig::paper(), 1);
        for target in [0.2, 0.45, 0.7] {
            let mut found = 0;
            for _ in 0..50 {
                if let Some(ts) = g.raw_set(target) {
                    assert!(
                        (ts.mk_utilization() - target).abs() < 0.01,
                        "target {target}, got {}",
                        ts.mk_utilization()
                    );
                    found += 1;
                }
            }
            assert!(found > 30, "too many rejections at {target}");
        }
    }

    #[test]
    fn raw_set_respects_parameter_ranges() {
        let mut g = Generator::new(WorkloadConfig::paper(), 2);
        let ts = loop {
            if let Some(ts) = g.raw_set(0.5) {
                break ts;
            }
        };
        assert!(ts.len() >= 5 && ts.len() <= 10);
        for t in &ts {
            let p_ms = t.period().ticks() / 1000;
            assert!((5..=50).contains(&p_ms));
            assert!((2..=20).contains(&t.mk().k()));
            assert!(t.mk().m() < t.mk().k());
            assert!(t.wcet() <= t.deadline());
            assert_eq!(t.deadline(), t.period());
        }
        // Priorities sorted by period.
        let periods: Vec<_> = ts.iter().map(|(_, t)| t.period()).collect();
        let mut sorted = periods.clone();
        sorted.sort();
        assert_eq!(periods, sorted);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_target_panics() {
        Generator::new(WorkloadConfig::paper(), 0).raw_set(0.0);
    }

    #[test]
    fn schedulable_set_passes_rta() {
        let mut g = Generator::new(WorkloadConfig::paper(), 3);
        let ts = g.schedulable_set(0.4).unwrap();
        assert!(is_schedulable_r_pattern(&ts));
    }

    #[test]
    fn determinism() {
        let a = Generator::new(WorkloadConfig::paper(), 9).schedulable_set(0.5);
        let b = Generator::new(WorkloadConfig::paper(), 9).schedulable_set(0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn buckets_follow_plan() {
        let plan = BucketPlan {
            sets_per_bucket: 2,
            ..BucketPlan::default()
        };
        let buckets = generate_buckets(WorkloadConfig::paper(), plan, 11);
        assert_eq!(buckets.len(), 8);
        for b in &buckets {
            assert!(b.generated >= b.sets.len() as u64);
            assert!((b.midpoint() - (b.lo + 0.05)).abs() < 1e-9);
            for ts in &b.sets {
                let u = ts.mk_utilization();
                assert!(u >= b.lo - 0.01 && u < b.hi + 0.01);
                assert!(is_schedulable_r_pattern(ts));
            }
        }
        // Low-utilization buckets fill easily.
        assert_eq!(buckets[0].sets.len(), 2);
        assert_eq!(buckets[3].sets.len(), 2);
    }

    #[test]
    fn pow2_harmonics_bound_the_hyperperiod() {
        let config = WorkloadConfig {
            period_ms: (4, 32),
            k_range: (2, 8),
            pow2_harmonics: true,
            ..WorkloadConfig::paper()
        };
        let mut g = Generator::new(config, 77);
        for _ in 0..30 {
            let Some(ts) = g.raw_set(0.5) else { continue };
            for (_, t) in ts.iter() {
                let p_ms = t.period().ticks() / 1000;
                assert!(p_ms.is_power_of_two(), "period {p_ms} not a power of two");
                assert!(
                    t.mk().k().is_power_of_two(),
                    "k {} not a power of two",
                    t.mk().k()
                );
            }
            // k·P are all powers of two ≤ 256 → LCM ≤ 256 ms.
            assert!(ts.hyperperiod() <= mkss_core::time::Time::from_ms(256));
        }
    }

    #[test]
    fn wcet_models_hit_the_same_target_differently() {
        let scaled = WorkloadConfig {
            wcet_model: WcetModel::Scaled,
            ..WorkloadConfig::paper()
        };
        let raw = WorkloadConfig::paper();
        assert_eq!(raw.wcet_model, WcetModel::UniformRaw);
        for (cfg, name) in [(scaled, "scaled"), (raw, "raw")] {
            let mut g = Generator::new(cfg, 5);
            let mut hits = 0;
            for _ in 0..30 {
                if let Some(ts) = g.raw_set(0.4) {
                    assert!((ts.mk_utilization() - 0.4).abs() < 0.01, "{name}");
                    hits += 1;
                }
            }
            assert!(hits > 15, "{name} rejected too much");
        }
    }

    #[test]
    fn raw_set_in_draws_inside_interval() {
        let mut g = Generator::new(WorkloadConfig::paper(), 9);
        for _ in 0..20 {
            if let Some(ts) = g.raw_set_in(0.3, 0.4) {
                let u = ts.mk_utilization();
                assert!((0.29..0.41).contains(&u), "got {u}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn raw_set_in_rejects_empty_interval() {
        Generator::new(WorkloadConfig::paper(), 0).raw_set_in(0.5, 0.5);
    }

    #[test]
    fn parallel_bucket_generation_matches_serial() {
        let plan = BucketPlan {
            sets_per_bucket: 2,
            ..BucketPlan::default()
        };
        let serial = generate_buckets_jobs(WorkloadConfig::paper(), plan, 5, 1);
        for jobs in [0, 2, 7] {
            let parallel = generate_buckets_jobs(WorkloadConfig::paper(), plan, 5, jobs);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.sets, b.sets, "jobs={jobs}");
                assert_eq!(a.generated, b.generated, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn bucket_bounds_cover_the_plan() {
        let bounds = bucket_bounds(BucketPlan::default());
        assert_eq!(bounds.len(), 8);
        assert!((bounds[0].0 - 0.1).abs() < 1e-9);
        assert!((bounds[7].1 - 0.9).abs() < 1e-9);
        for w in bounds.windows(2) {
            assert!((w[0].1 - w[1].0).abs() < 1e-9, "gap between buckets");
        }
    }

    #[test]
    fn buckets_deterministic_and_independent() {
        let plan = BucketPlan {
            sets_per_bucket: 1,
            ..BucketPlan::default()
        };
        let a = generate_buckets(WorkloadConfig::paper(), plan, 5);
        let b = generate_buckets(WorkloadConfig::paper(), plan, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sets, y.sets);
        }
    }
}
