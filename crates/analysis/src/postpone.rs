//! Backup release postponement (Section IV, Definitions 2–5).
//!
//! To let main jobs finish early and cancel their backups, backup jobs on
//! the spare processor are released as late as provably safe:
//! `r̃_i = r_i + θ_i` (Eq. 3). The *release postponement interval* `θ_i`
//! is found by an offline inspecting-point analysis over the static
//! deeply-red pattern:
//!
//! * the *inspecting points* of a backup job `J′_ij` are its absolute
//!   deadline and every postponed release of a higher-priority backup job
//!   falling strictly inside `(r_ij, d_ij)` (Definition 3);
//! * `θ_ij = max over inspecting points t̄ of
//!   (t̄ − (c_ij + Σ interfering higher-priority WCETs) − r_ij)` where the
//!   interfering jobs are those with `d_kl > r_ij` and `r̃_kl < t̄`
//!   (Definition 4, Eq. 4);
//! * `θ_i = min over the backup jobs in the level-i pattern hyperperiod
//!   LCM_{q≤i}(k_q·P_q)` (Definition 5, Eq. 5), computed in descending
//!   priority order with releases revised level by level.
//!
//! If `θ_i` comes out below the dual-priority *promotion time*
//! `Y_i = D_i − R_i`, the promotion time is used instead — postponing by
//! `Y_i` is always safe (the paper words the fallback as "set θ_i to be
//! R_i", which we read as the promotion-time bound; see DESIGN.md).
//! The same fallback is used when the level-i pattern hyperperiod is too
//! large to enumerate, which keeps the analysis sound on arbitrary random
//! task sets.

use mkss_core::mk::{MkConstraint, Pattern};
use mkss_core::task::{TaskId, TaskSet};
use mkss_core::time::Time;
use serde::{Deserialize, Serialize};
use std::error::Error as StdError;
use std::fmt;

use crate::rta::{analyze, InterferenceModel};

/// Error from the postponement analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PostponeError {
    /// The task set is not schedulable under the pattern, so no safe
    /// postponement exists (the promotion-time fallback is undefined).
    Unschedulable {
        /// First unschedulable task.
        task: TaskId,
    },
}

impl fmt::Display for PostponeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostponeError::Unschedulable { task } => {
                write!(f, "task {task} is unschedulable under the pattern")
            }
        }
    }
}

impl StdError for PostponeError {}

/// Configuration for [`postponement_intervals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostponeConfig {
    /// Static pattern defining which jobs have backups.
    pub pattern: Pattern,
    /// If the level-i pattern hyperperiod contains more than this many
    /// jobs of τ_i, skip the inspecting-point analysis for τ_i and use the
    /// promotion time `Y_i` (sound, merely less aggressive).
    pub max_jobs_per_task: u64,
}

impl Default for PostponeConfig {
    fn default() -> Self {
        PostponeConfig {
            pattern: Pattern::DeeplyRed,
            max_jobs_per_task: 2_000,
        }
    }
}

/// Outcome of the raw inspecting-point analysis for one task, before the
/// promotion-time fallback is applied.
///
/// The three cases were previously conflated into an `Option<Time>` that
/// mapped a negative raw θ through `u64::try_from(..).ok()`, making "θ
/// clamped to the promotion floor" indistinguishable from "hyperperiod too
/// large to enumerate". They answer different questions — the first says
/// the analysis ran and was beaten by the floor, the second that it never
/// ran — so they are separate variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: the raw-vs-floored dichotomy is Definition 4's case split; a third case cannot exist
pub enum RawTheta {
    /// The inspecting-point minimum, which is at or above the promotion
    /// floor `Y_i` and therefore *is* the effective θ_i.
    Exact(Time),
    /// The analysis ran but its minimum fell strictly below the promotion
    /// floor (possibly below zero); θ_i clamps to `Y_i`. The sub-floor
    /// value is not reported: the enumeration stops as soon as the floor
    /// is breached, so a full (and useless) minimum is never computed.
    BelowFloor,
    /// The level-i pattern hyperperiod exceeded
    /// [`PostponeConfig::max_jobs_per_task`], so the enumeration was
    /// skipped and θ_i falls back to `Y_i` (sound, merely conservative).
    NotEnumerated,
}

/// Result of the postponement analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Postponement {
    /// Per-task release postponement interval `θ_i` (already including the
    /// promotion-time fallback), in priority order.
    pub theta: Vec<Time>,
    /// Per-task promotion times `Y_i` (Eq. 2) under mandatory-only
    /// interference, for reference and ablations.
    pub promotion: Vec<Time>,
    /// Per-task raw inspecting-point results before the fallback.
    pub raw_theta: Vec<RawTheta>,
}

impl Postponement {
    /// Postponed release of the `j`-th (1-based) backup job of `task`:
    /// `r̃ = (j−1)·P + θ` (Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for the analysed set or `j` is 0.
    pub fn postponed_release(&self, ts: &TaskSet, task: TaskId, j: u64) -> Time {
        ts.task(task).release_of(j) + self.theta[task.0]
    }
}

/// Computes the per-task release postponement intervals `θ_i`
/// (Definitions 2–5) for the backup tasks on the spare processor.
///
/// # Errors
///
/// Returns [`PostponeError::Unschedulable`] if some task fails the
/// mandatory-only response-time analysis — the paper's premise (Theorem 1)
/// requires schedulability under the R-pattern.
///
/// # Examples
///
/// The paper's worked example (Fig. 5): τ1 = (10,10,3,2,3),
/// τ2 = (15,15,8,1,2) give θ1 = 7 and θ2 = 4.
///
/// ```
/// use mkss_analysis::postpone::{postponement_intervals, PostponeConfig};
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![
///     Task::from_ms(10, 10, 3, 2, 3)?,
///     Task::from_ms(15, 15, 8, 1, 2)?,
/// ])?;
/// let post = postponement_intervals(&ts, PostponeConfig::default())?;
/// assert_eq!(post.theta, vec![Time::from_ms(7), Time::from_ms(4)]);
/// # Ok(())
/// # }
/// ```
pub fn postponement_intervals(
    ts: &TaskSet,
    config: PostponeConfig,
) -> Result<Postponement, PostponeError> {
    let model = InterferenceModel::MandatoryOnly(config.pattern);
    let report = analyze(ts, model);
    let mut promotion = Vec::with_capacity(ts.len());
    for id in ts.ids() {
        match report.response_time(id) {
            Some(r) => promotion.push(ts.task(id).deadline() - r),
            None => return Err(PostponeError::Unschedulable { task: id }),
        }
    }

    let mut theta: Vec<Time> = Vec::with_capacity(ts.len());
    let mut raw_theta: Vec<RawTheta> = Vec::with_capacity(ts.len());
    let mut rows: Vec<HpRow> = Vec::with_capacity(ts.len());

    for (i, task) in ts.iter() {
        let horizon = ts.hyperperiod_up_to(i);
        let jobs_in_horizon = if horizon == Time::MAX {
            u64::MAX
        } else {
            horizon.div_floor(task.period())
        };

        let floor = promotion[i.0].ticks() as i128;
        let raw = if jobs_in_horizon > config.max_jobs_per_task {
            RawTheta::NotEnumerated
        } else {
            match min_theta_over_jobs(
                ts,
                i,
                config.pattern,
                jobs_in_horizon,
                &theta,
                floor,
                &mut rows,
            ) {
                // No mandatory job in the horizon (cannot happen for a
                // valid (m,k) with jobs_in_horizon ≥ k): nothing ran.
                None => RawTheta::NotEnumerated,
                Some(t) if t < floor => RawTheta::BelowFloor,
                // t ≥ floor ≥ 0, so the u64 cast is exact.
                Some(t) => RawTheta::Exact(Time::from_ticks(t as u64)),
            }
        };
        raw_theta.push(raw);

        // Fallback / floor: the promotion time is always safe; never go
        // below it (nor below zero).
        let effective = match raw {
            RawTheta::Exact(t) => t,
            RawTheta::BelowFloor | RawTheta::NotEnumerated => promotion[i.0],
        };
        theta.push(effective);
    }

    Ok(Postponement {
        theta,
        promotion,
        raw_theta,
    })
}

/// `min_j θ_ij` (Eq. 5) over the mandatory jobs of τ_i in its level-i
/// pattern hyperperiod, using already-fixed postponements `theta` of the
/// higher-priority tasks. Returns `None` if τ_i has no mandatory job in
/// the horizon (cannot happen for valid (m,k) with `jobs_in_horizon ≥ k`).
///
/// Two cutoffs keep the enumeration cheap without changing the effective
/// θ_i: a job's inspecting-point scan stops once its running max reaches
/// the minimum so far (a value that can only tie or exceed the min is
/// interchangeable with the exact θ_ij), and the job loop stops once the
/// minimum falls strictly below `floor` (θ_i clamps to the promotion time
/// either way — the caller reports [`RawTheta::BelowFloor`], not a value).
fn min_theta_over_jobs(
    ts: &TaskSet,
    i: TaskId,
    pattern: Pattern,
    jobs_in_horizon: u64,
    theta: &[Time],
    floor: i128,
    rows: &mut Vec<HpRow>,
) -> Option<i128> {
    let task = ts.task(i);
    let mut min_theta: Option<i128> = None;
    for j in 1..=jobs_in_horizon {
        if !pattern.is_mandatory(task.mk(), j) {
            continue;
        }
        let r = task.release_of(j);
        let d = r + task.deadline();
        let stop_at = min_theta.unwrap_or(i128::MAX);
        let t_ij = theta_for_job(ts, i, pattern, r, d, theta, stop_at, rows);
        let new_min = min_theta.map_or(t_ij, |cur| cur.min(t_ij));
        min_theta = Some(new_min);
        if new_min < floor {
            break;
        }
    }
    min_theta
}

/// Number of jobs `l ≥ 1` of a task with period `p` whose shifted release
/// `(l−1)·p + offset` is strictly before `x`.
fn jobs_released_before(x: Time, offset: Time, p: Time) -> u64 {
    match x.checked_sub(offset) {
        Some(gap) if !gap.is_zero() => (gap - Time::from_ticks(1)).div_floor(p) + 1,
        _ => 0,
    }
}

/// Per-higher-priority-task constants of one Eq. 4 evaluation, hoisted
/// out of the inspecting-point loop: everything here depends only on the
/// analysed job's release `r`, not on the inspecting point `t̄`.
#[derive(Clone, Copy)]
struct HpRow {
    theta: Time,
    period: Time,
    wcet: i128,
    mk: MkConstraint,
    /// Jobs `l` with `d_kl ≤ r` — excluded from the interference count.
    excluded: u64,
    /// `mandatory_among(excluded)`, the subtrahend of the count.
    excluded_mandatory: u64,
}

/// Σ of WCETs of higher-priority backup jobs with `d_kl > r` and
/// `r̃_kl < t̄` (Eq. 4), plus `c_i`. `d_kl > r` excludes a prefix of jobs,
/// `r̃_kl < t̄` selects a prefix, so the interfering mandatory jobs are
/// those with index in (excluded, selected].
fn demand_at(rows: &[HpRow], pattern: Pattern, c_i: i128, t_bar: Time) -> i128 {
    let mut demand = c_i;
    for row in rows {
        // l with (l−1)P + θ < t̄.
        let selected = jobs_released_before(t_bar, row.theta, row.period);
        if selected > row.excluded {
            let count = pattern.mandatory_among(row.mk, selected) - row.excluded_mandatory;
            demand += row.wcet * (count as i128);
        }
    }
    demand
}

/// `θ_ij` (Eq. 4) for the backup job of τ_i with release `r` and absolute
/// deadline `d`.
///
/// Both quantifications of Eq. 4 reduce to prefix/suffix ranges of the
/// higher-priority job index `l` (releases, postponed releases, and
/// deadlines are all affine in `l`), so the interference sum uses the
/// closed-form mandatory-job counter instead of enumerating jobs — the
/// analysis is O(inspecting points × tasks) per job rather than
/// O(hyperperiod).
///
/// Inspecting points are evaluated as they are generated (the max is
/// order-independent), and the scan returns early once the running max
/// reaches `stop_at`: the caller only uses the value through `min`, so
/// any result ≥ `stop_at` is interchangeable. Pass `i128::MAX` for the
/// exact maximum. `rows` is a caller-owned scratch buffer, cleared here.
#[allow(clippy::too_many_arguments)] // internal: mirrors Eq. 4's parameter list
fn theta_for_job(
    ts: &TaskSet,
    i: TaskId,
    pattern: Pattern,
    r: Time,
    d: Time,
    theta: &[Time],
    stop_at: i128,
    rows: &mut Vec<HpRow>,
) -> i128 {
    let r_ticks = r.ticks() as i128;
    let r_next = r + Time::from_ticks(1);
    rows.clear();
    for k in ts.ids().take(i.0) {
        let hp = ts.task(k);
        // l with (l−1)P + D ≤ r, i.e. (l−1)P + D < r + 1 tick.
        let excluded = jobs_released_before(r_next, hp.deadline(), hp.period());
        rows.push(HpRow {
            theta: theta[k.0],
            period: hp.period(),
            wcet: hp.wcet().ticks() as i128,
            mk: hp.mk(),
            excluded,
            excluded_mandatory: pattern.mandatory_among(hp.mk(), excluded),
        });
    }
    let rows: &[HpRow] = rows;
    let c_i = ts.task(i).wcet().ticks() as i128;

    // The absolute deadline is always an inspecting point (Definition 3);
    // it usually dominates, so evaluating it first lets the `stop_at`
    // cutoff skip most of the postponed-release points below.
    let mut best = d.ticks() as i128 - demand_at(rows, pattern, c_i, d) - r_ticks;
    if best >= stop_at {
        return best;
    }

    // The remaining inspecting points: every postponed higher-priority
    // mandatory backup release strictly inside (r, d).
    for (k, row) in ts.ids().take(i.0).zip(rows) {
        // Jobs with r̃_kl ≤ r form a prefix of length `skip`; scan only
        // the jobs landing inside (r, d) — at most D_i/P_k + 1 of them.
        let skip = jobs_released_before(r_next, row.theta, row.period);
        let mut l = skip + 1;
        let mut postponed = ts.task(k).release_of(l) + row.theta;
        while postponed < d {
            debug_assert!(postponed > r);
            if pattern.is_mandatory(row.mk, l) {
                let candidate =
                    postponed.ticks() as i128 - demand_at(rows, pattern, c_i, postponed) - r_ticks;
                best = best.max(candidate);
                if best >= stop_at {
                    return best;
                }
            }
            l += 1;
            postponed += row.period;
        }
    }
    best
}

/// Per-**job** release postponement: the `θ_ij` of Definition 4 used
/// directly, without taking the per-task minimum of Definition 5.
///
/// This is an extension beyond the paper (which fixes one `θ_i` per task
/// so releases stay strictly periodic): every individual backup job is
/// already guaranteed to meet its deadline by Eq. (4) alone — the
/// inspecting-point *work-pool* argument is per job, and it tolerates
/// higher-priority jobs releasing **later** than analyzed (a non-counted
/// job still cannot arrive before the inspecting point; a counted one
/// contributes at most its full WCET either way). The higher-priority
/// postponed releases used as inspecting points are the paper's
/// *task-level* ones, keeping the cascade identical to Definition 3.
///
/// **Soundness gate.** The pool argument is the *only* one that
/// survives the release jitter that per-job delays introduce. Wherever a
/// delay instead comes from the promotion-time floor (`Y_i`, a
/// *density*-based bound) — because a task's hyperperiod was too large
/// to enumerate, or an inspecting-point value fell below `Y_i` — that
/// bound assumes strictly periodic higher-priority releases, and
/// per-job jitter above it can squeeze two releases closer than a
/// period and break it (found by a 400-case property soak; see
/// DESIGN.md §7). [`job_postponement`] therefore degrades the **whole**
/// assignment to constant task-level delays unless *every* mandatory
/// position of *every* task got a pure pool-based `θ_ij ≥ Y_i`.
///
/// `θ_ij` is periodic with the level-i pattern hyperperiod, so lookups
/// wrap around.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobPostponement {
    /// The underlying task-level analysis (fallback and cascade input).
    pub task_level: Postponement,
    /// Per-task table of `θ_ij` for the mandatory jobs in one level-i
    /// pattern hyperperiod, indexed by `(j − 1) mod jobs_in_horizon`
    /// (`None` for optional positions and for tasks where the horizon
    /// was too large to enumerate).
    tables: Vec<Option<Vec<Option<Time>>>>,
}

impl JobPostponement {
    /// The release delay for the backup of the `j`-th (**1-based**) job
    /// of `task`, assuming it occupies the deeply-red-mandatory position
    /// of its window; non-pattern positions and un-enumerated tasks use
    /// the task-level `θ_i`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range or `j` is zero.
    pub fn delay_of(&self, task: TaskId, j: u64) -> Time {
        assert!(j >= 1, "job indices are 1-based");
        let fallback = self.task_level.theta[task.0];
        match &self.tables[task.0] {
            Some(table) if !table.is_empty() => {
                let slot = ((j - 1) % table.len() as u64) as usize;
                table[slot].unwrap_or(fallback).max(fallback)
            }
            _ => fallback,
        }
    }
}

/// Computes per-job postponement intervals (see [`JobPostponement`]).
///
/// # Errors
///
/// Same as [`postponement_intervals`].
pub fn job_postponement(
    ts: &TaskSet,
    config: PostponeConfig,
) -> Result<JobPostponement, PostponeError> {
    let task_level = postponement_intervals(ts, config)?;
    let mut tables = Vec::with_capacity(ts.len());
    let mut rows: Vec<HpRow> = Vec::with_capacity(ts.len());
    // Pure pool-based assignment so far? (See the soundness gate on
    // [`JobPostponement`].)
    let mut pure = true;
    for (i, task) in ts.iter() {
        let horizon = ts.hyperperiod_up_to(i);
        let jobs_in_horizon = if horizon == Time::MAX {
            u64::MAX
        } else {
            horizon.div_floor(task.period())
        };
        if jobs_in_horizon > config.max_jobs_per_task {
            // This task's delay is the promotion-based fallback: the
            // density argument would be broken by jitter above it.
            pure = false;
            tables.push(None);
            continue;
        }
        let promotion = task_level.promotion[i.0];
        let mut table = Vec::with_capacity(jobs_in_horizon as usize);
        for j in 1..=jobs_in_horizon {
            if !config.pattern.is_mandatory(task.mk(), j) {
                table.push(None);
                continue;
            }
            let r = task.release_of(j);
            let d = r + task.deadline();
            // Per-job values are reported exactly, so no `stop_at` cutoff.
            let t_ij = theta_for_job(
                ts,
                i,
                config.pattern,
                r,
                d,
                &task_level.theta,
                i128::MAX,
                &mut rows,
            );
            let value = u64::try_from(t_ij).ok().map(Time::from_ticks);
            match value {
                Some(t) if t >= promotion => table.push(Some(t)),
                _ => {
                    // This position would need the promotion floor.
                    pure = false;
                    table.push(None);
                }
            }
        }
        tables.push(Some(table));
    }
    if !pure {
        // Degrade to the (jitter-free) constant task-level assignment.
        tables = vec![None; ts.len()];
    }
    Ok(JobPostponement { task_level, tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::task::Task;

    fn set(tasks: &[(u64, u64, u64, u32, u32)]) -> TaskSet {
        TaskSet::new(
            tasks
                .iter()
                .map(|&(p, d, c, m, k)| Task::from_ms(p, d, c, m, k).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn paper_fig5_example() {
        // τ1 = (10,10,3,2,3), τ2 = (15,15,8,1,2): θ1 = 7, θ2 = 4.
        let ts = set(&[(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)]);
        let post = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
        assert_eq!(post.theta, vec![Time::from_ms(7), Time::from_ms(4)]);
        assert_eq!(
            post.raw_theta,
            vec![
                RawTheta::Exact(Time::from_ms(7)),
                RawTheta::Exact(Time::from_ms(4))
            ]
        );
        // Y2 = 15 − 14 = 1 per the paper's closing remark: θ2 ≫ Y2.
        assert_eq!(post.promotion[1], Time::from_ms(1));
        // Postponed releases per Eq. (3).
        assert_eq!(post.postponed_release(&ts, TaskId(0), 1), Time::from_ms(7));
        assert_eq!(post.postponed_release(&ts, TaskId(0), 2), Time::from_ms(17));
        assert_eq!(post.postponed_release(&ts, TaskId(1), 1), Time::from_ms(4));
    }

    #[test]
    fn theta_never_below_promotion() {
        let ts = set(&[(5, 4, 3, 2, 4), (10, 10, 3, 1, 2)]);
        let post = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
        for (t, y) in post.theta.iter().zip(&post.promotion) {
            assert!(t >= y, "θ = {t} below promotion time {y}");
        }
    }

    #[test]
    fn unschedulable_set_errors() {
        let ts = set(&[(4, 4, 3, 2, 3), (6, 6, 3, 2, 3)]);
        assert_eq!(
            postponement_intervals(&ts, PostponeConfig::default()),
            Err(PostponeError::Unschedulable { task: TaskId(1) })
        );
        assert_eq!(
            PostponeError::Unschedulable { task: TaskId(1) }.to_string(),
            "task τ2 is unschedulable under the pattern"
        );
    }

    #[test]
    fn huge_hyperperiod_falls_back_to_promotion() {
        let ts = set(&[(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)]);
        let config = PostponeConfig {
            max_jobs_per_task: 1, // force the fallback
            ..PostponeConfig::default()
        };
        let post = postponement_intervals(&ts, config).unwrap();
        assert_eq!(
            post.raw_theta,
            vec![RawTheta::NotEnumerated, RawTheta::NotEnumerated]
        );
        assert_eq!(post.theta, post.promotion);
    }

    #[test]
    fn negative_raw_theta_reports_below_floor() {
        // τ1 = (4,4,2,2,3), τ2 = (5,5,2,1,3): schedulable under the
        // deeply-red pattern, but τ2's inspecting-point minimum is −1 ms —
        // one of its mandatory jobs is swamped by carried-in
        // higher-priority backup work at every inspecting point. The old
        // `Option<Time>` raw_theta pushed the negative value through
        // `u64::try_from(..).ok()` into `None`, indistinguishable from a
        // hyperperiod too large to enumerate; it must surface as
        // `BelowFloor` instead, with θ clamped to the promotion time.
        let ts = set(&[(4, 4, 2, 2, 3), (5, 5, 2, 1, 3)]);
        let post = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
        assert_eq!(post.raw_theta[1], RawTheta::BelowFloor);
        assert_eq!(post.theta[1], post.promotion[1]);
        // τ1 is alone on the spare: its slack D − C equals the promotion
        // time, so its analysis completes with an exact value.
        assert_eq!(post.raw_theta[0], RawTheta::Exact(post.promotion[0]));
        assert_eq!(post.promotion, vec![Time::from_ms(2), Time::from_ms(1)]);
    }

    #[test]
    fn single_task_theta_is_slack() {
        // Alone, a backup can be postponed by D − C for every job.
        let ts = set(&[(10, 8, 3, 1, 2)]);
        let post = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
        assert_eq!(post.theta, vec![Time::from_ms(5)]);
    }

    #[test]
    fn job_level_postponement_dominates_task_level() {
        for tasks in [
            vec![(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)],
            vec![(5, 4, 3, 2, 4), (10, 10, 3, 1, 2)],
            vec![(5, 5, 1, 1, 3), (7, 7, 2, 2, 3), (14, 14, 3, 1, 2)],
        ] {
            let ts = set(&tasks);
            let jp = job_postponement(&ts, PostponeConfig::default()).unwrap();
            for (id, task) in ts.iter() {
                let jobs = ts.hyperperiod_up_to(id).div_floor(task.period());
                for j in 1..=(3 * jobs) {
                    // Every per-job delay is at least the task-level θ…
                    assert!(jp.delay_of(id, j) >= jp.task_level.theta[id.0]);
                    // …and wraps periodically.
                    assert_eq!(jp.delay_of(id, j), jp.delay_of(id, j + jobs));
                }
            }
        }
    }

    #[test]
    fn job_level_postponement_fig5() {
        let ts = set(&[(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)]);
        let jp = job_postponement(&ts, PostponeConfig::default()).unwrap();
        // Both mandatory jobs of τ'1 admit exactly 7 (the paper computes
        // θ11 = θ12 = 7), and τ'2's single job exactly 4.
        assert_eq!(jp.delay_of(TaskId(0), 1), Time::from_ms(7));
        assert_eq!(jp.delay_of(TaskId(0), 2), Time::from_ms(7));
        assert_eq!(jp.delay_of(TaskId(1), 1), Time::from_ms(4));
    }

    #[test]
    fn job_level_falls_back_on_huge_hyperperiods() {
        let ts = set(&[(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)]);
        let config = PostponeConfig {
            max_jobs_per_task: 1,
            ..PostponeConfig::default()
        };
        let jp = job_postponement(&ts, config).unwrap();
        assert_eq!(jp.delay_of(TaskId(0), 5), jp.task_level.theta[0]);
        assert_eq!(jp.delay_of(TaskId(1), 9), jp.task_level.theta[1]);
    }

    #[test]
    fn postponed_backups_meet_deadlines_densely() {
        // Brute-force check: simulate the backup-only schedule (FP,
        // preemptive, releases postponed) over the hyperperiod and verify
        // every backup meets its deadline. Dense tick-by-tick simulation.
        for tasks in [
            vec![(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)],
            vec![(5, 4, 3, 2, 4), (10, 10, 3, 1, 2)],
            vec![(5, 5, 1, 1, 3), (7, 7, 2, 2, 3), (14, 14, 3, 1, 2)],
        ] {
            let ts = set(&tasks);
            let post = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
            assert_backups_schedulable(&ts, &post);
        }
    }

    /// Tick-accurate FP simulation of the postponed backup jobs only.
    fn assert_backups_schedulable(ts: &TaskSet, post: &Postponement) {
        use mkss_core::time::TICKS_PER_MS;
        let horizon = ts.hyperperiod();
        assert!(horizon < Time::from_ms(100_000), "test horizon too large");
        let step = TICKS_PER_MS; // all test inputs are whole-ms
                                 // Collect jobs: (postponed release, deadline, wcet, remaining).
        let mut jobs: Vec<(u64, u64, u64, u64, usize)> = Vec::new();
        for (id, task) in ts.iter() {
            let n = horizon.div_floor(task.period());
            for j in 1..=n {
                if !Pattern::DeeplyRed.is_mandatory(task.mk(), j) {
                    continue;
                }
                let rel = post.postponed_release(ts, id, j).ticks();
                let dl = (task.release_of(j) + task.deadline()).ticks();
                jobs.push((rel, dl, task.wcet().ticks(), task.wcet().ticks(), id.0));
            }
        }
        let mut t = 0u64;
        while t < horizon.ticks() {
            // Highest-priority released, unfinished job.
            if let Some(job) = jobs
                .iter_mut()
                .filter(|j| j.0 <= t && j.3 > 0)
                .min_by_key(|j| j.4)
            {
                job.3 -= step;
                let finish = t + step;
                assert!(
                    job.3 > 0 || finish <= job.1,
                    "backup job of τ{} misses deadline {} (finish {finish})",
                    job.4 + 1,
                    job.1
                );
            }
            t += step;
        }
        for j in &jobs {
            assert_eq!(j.3, 0, "backup job of τ{} never completed", j.4 + 1);
        }
    }
}
