//! # mkss-analysis
//!
//! Offline schedulability analysis for (m,k)-firm fixed-priority
//! standby-sparing systems:
//!
//! * [`rta`] — busy-window response-time analysis with either classic
//!   (all jobs) or mandatory-only (deeply-red pattern) interference, plus
//!   the dual-priority *promotion times* `Y_i = D_i − R_i` of Eq. (2);
//! * [`postpone`] — the backup *release postponement intervals* `θ_i` of
//!   Definitions 2–5 (Eqs. 3–5), which let the spare processor start
//!   backup jobs as late as provably safe so that completed main jobs can
//!   cancel them before they consume energy.
//!
//! ## Example
//!
//! ```
//! use mkss_analysis::prelude::*;
//! use mkss_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ts = TaskSet::new(vec![
//!     Task::from_ms(10, 10, 3, 2, 3)?,
//!     Task::from_ms(15, 15, 8, 1, 2)?,
//! ])?;
//! assert!(is_schedulable_r_pattern(&ts));
//! let post = postponement_intervals(&ts, PostponeConfig::default())?;
//! assert_eq!(post.theta, vec![Time::from_ms(7), Time::from_ms(4)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod postpone;
pub mod rotation;
pub mod rta;
pub mod util_bound;

/// Commonly used analysis entry points.
pub mod prelude {
    pub use crate::exact::{exact_sweep, exact_sweep_rotated, ExactReport};
    pub use crate::postpone::{
        job_postponement, postponement_intervals, JobPostponement, PostponeConfig, PostponeError,
        Postponement,
    };
    pub use crate::rotation::{find_rotation, RotationAssignment, RotationConfig};
    pub use crate::rta::{
        analyze, is_schedulable_r_pattern, promotion_times, response_time, InterferenceModel,
        SchedulabilityReport, TaskResponse,
    };
    pub use crate::util_bound::{
        liu_layland_sufficient, mandatory_utilization, quick_verdict, QuickVerdict,
    };
}
