//! Cheap necessary / sufficient utilization-based schedulability checks,
//! used as fast filters before the exact busy-window analysis.

use mkss_core::mk::Pattern;
use mkss_core::task::TaskSet;

/// Mandatory-load utilization of the set under a static pattern with
/// exactly `m` mandatory jobs per `k`: `Σ mᵢCᵢ/(kᵢPᵢ)`.
///
/// A value above 1.0 makes the set unschedulable on one processor under
/// any scheduling of the mandatory jobs (necessary condition); the exact
/// test is [`crate::rta::analyze`].
pub fn mandatory_utilization(ts: &TaskSet) -> f64 {
    ts.mk_utilization()
}

/// Liu–Layland style sufficient test on the mandatory load: if the
/// deeply-red mandatory jobs, treated as a synthetic task set with full
/// (per-window peak) rate, fit under the Liu–Layland bound
/// `n(2^{1/n} − 1)` with deadlines equal to periods, the set is
/// schedulable under the R-pattern.
///
/// This is *very* conservative — the deeply-red pattern's mandatory jobs
/// arrive back-to-back at the start of each window, so the peak rate of
/// task τᵢ is its full utilization `Cᵢ/Pᵢ`, not `mᵢCᵢ/(kᵢPᵢ)` — but it is
/// sound for constrained deadlines `D = P`, O(n), and catches the easy
/// cases without running the fixed-point analysis.
///
/// Returns `false` when any deadline is shorter than its period (the
/// bound does not apply); fall back to the exact test.
///
/// # Examples
///
/// ```
/// use mkss_analysis::util_bound::liu_layland_sufficient;
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let light = TaskSet::new(vec![
///     Task::from_ms(20, 20, 2, 1, 2)?,
///     Task::from_ms(30, 30, 3, 1, 3)?,
/// ])?;
/// assert!(liu_layland_sufficient(&light));
/// # Ok(())
/// # }
/// ```
pub fn liu_layland_sufficient(ts: &TaskSet) -> bool {
    let n = ts.len() as f64;
    let bound = n * (2f64.powf(1.0 / n) - 1.0);
    if ts.iter().any(|(_, task)| task.deadline() < task.period()) {
        return false;
    }
    let total = mkss_core::fold::sum_f64_by(ts.iter(), |(_, task)| task.utilization());
    total <= bound
}

/// Quick three-way verdict combining the necessary and sufficient bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: a three-way verdict (yes/no/undecided) is logically complete; consumers match exhaustively
pub enum QuickVerdict {
    /// Definitely schedulable under the R-pattern (sufficient bound met).
    Schedulable,
    /// Definitely not schedulable (mandatory utilization above 1).
    Unschedulable,
    /// The quick bounds cannot decide; run [`crate::rta::analyze`].
    Unknown,
}

/// Applies both quick bounds.
///
/// ```
/// use mkss_analysis::util_bound::{quick_verdict, QuickVerdict};
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let heavy = TaskSet::new(vec![
///     Task::from_ms(5, 5, 4, 3, 4)?,
///     Task::from_ms(7, 7, 5, 4, 5)?,
/// ])?;
/// assert_eq!(quick_verdict(&heavy), QuickVerdict::Unschedulable);
/// # Ok(())
/// # }
/// ```
pub fn quick_verdict(ts: &TaskSet) -> QuickVerdict {
    if mandatory_utilization(ts) > 1.0 {
        return QuickVerdict::Unschedulable;
    }
    if liu_layland_sufficient(ts) {
        return QuickVerdict::Schedulable;
    }
    QuickVerdict::Unknown
}

/// The deeply-red mandatory jobs of the whole set repeat with the pattern
/// hyperperiod; this helper reports the exact average mandatory demand in
/// one hyperperiod as a fraction of its length (equals
/// [`mandatory_utilization`] when the hyperperiod is finite — a
/// consistency check used by tests).
pub fn mandatory_demand_fraction(ts: &TaskSet, pattern: Pattern) -> Option<f64> {
    let h = ts.hyperperiod();
    if h == mkss_core::time::Time::MAX {
        return None;
    }
    let demand = mkss_core::fold::sum_f64_by(ts.iter(), |(_, task)| {
        let jobs = h.div_floor(task.period());
        let mandatory = pattern.mandatory_among(task.mk(), jobs);
        (mandatory * task.wcet().ticks()) as f64
    });
    Some(demand / h.ticks() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rta::is_schedulable_r_pattern;
    use mkss_core::task::Task;

    fn set(tasks: &[(u64, u64, u64, u32, u32)]) -> TaskSet {
        TaskSet::new(
            tasks
                .iter()
                .map(|&(p, d, c, m, k)| Task::from_ms(p, d, c, m, k).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn mandatory_utilization_matches_task_set() {
        let ts = set(&[(5, 5, 1, 1, 2), (10, 10, 2, 1, 2)]);
        assert!((mandatory_utilization(&ts) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sufficient_bound_implies_exact_schedulability() {
        let ts = set(&[(20, 20, 2, 1, 2), (30, 30, 3, 1, 3), (40, 40, 4, 2, 5)]);
        assert!(liu_layland_sufficient(&ts));
        assert!(is_schedulable_r_pattern(&ts));
        assert_eq!(quick_verdict(&ts), QuickVerdict::Schedulable);
    }

    #[test]
    fn constrained_deadlines_defer_to_exact_test() {
        let ts = set(&[(20, 10, 2, 1, 2)]);
        assert!(!liu_layland_sufficient(&ts));
    }

    #[test]
    fn over_unit_mandatory_load_is_unschedulable() {
        let ts = set(&[(5, 5, 4, 3, 4), (7, 7, 5, 4, 5)]);
        assert_eq!(quick_verdict(&ts), QuickVerdict::Unschedulable);
        assert!(!is_schedulable_r_pattern(&ts));
    }

    #[test]
    fn undecided_region_exists() {
        // Heavy but under 100% mandatory load, above the LL bound
        // (total utilization 0.9 > 2(√2−1) ≈ 0.828; mandatory ≈ 0.64).
        let ts = set(&[(10, 10, 5, 3, 4), (15, 15, 6, 2, 3)]);
        assert_eq!(quick_verdict(&ts), QuickVerdict::Unknown);
    }

    #[test]
    fn demand_fraction_equals_mk_utilization() {
        let ts = set(&[(5, 4, 3, 2, 4), (10, 10, 3, 1, 2)]);
        let frac = mandatory_demand_fraction(&ts, Pattern::DeeplyRed).unwrap();
        assert!((frac - ts.mk_utilization()).abs() < 1e-12);
    }
}
