//! Pattern-rotation search, after Quan & Hu's enhanced fixed-priority
//! (m,k) scheduling (the paper's reference \[13\]).
//!
//! The deeply-red pattern clusters every task's mandatory jobs at the
//! start of its window; at the synchronous release all clusters align and
//! the peak load is maximal. *Rotating* individual tasks' patterns
//! (cyclically shifting their mandatory positions) de-clusters that peak
//! and can make otherwise-unschedulable sets schedulable — at the cost of
//! losing the synchronous-critical-instant argument, so candidate
//! assignments are validated with the exact hyperperiod sweep
//! ([`crate::exact::exact_sweep_rotated`] with
//! [`ExactReport::schedulable_forever`]).
//!
//! The search is a bounded coordinate descent: repeatedly pick, for each
//! task in priority order, the offset minimizing (misses, worst-response
//! sum) under the exact sweep, until the set is schedulable or no pass
//! improves anything.

use mkss_core::mk::{Pattern, RotatedPattern};
use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use serde::{Deserialize, Serialize};

use crate::exact::{exact_sweep_rotated, ExactReport};

/// Configuration for [`find_rotation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RotationConfig {
    /// Base pattern being rotated (the paper's schemes use deeply-red).
    pub base: Pattern,
    /// Hyperperiod cap: sets whose pattern hyperperiod exceeds this are
    /// not searched (the exact sweep could not prove anything).
    pub max_hyperperiod: Time,
    /// Maximum coordinate-descent passes over the task set.
    pub max_passes: u32,
}

impl Default for RotationConfig {
    fn default() -> Self {
        RotationConfig {
            base: Pattern::DeeplyRed,
            max_hyperperiod: Time::from_ms(200_000),
            max_passes: 3,
        }
    }
}

/// Outcome of the rotation search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotationAssignment {
    /// Chosen per-task patterns (offset 0 = unrotated).
    pub patterns: Vec<RotatedPattern>,
    /// Exact sweep report of the chosen assignment.
    pub report: ExactReport,
}

impl RotationAssignment {
    /// Whether the chosen assignment is provably schedulable.
    pub fn schedulable(&self) -> bool {
        self.report.schedulable_forever()
    }
}

/// Badness of a sweep: (number of missing tasks, summed worst responses).
fn badness(report: &ExactReport) -> (usize, u128) {
    let misses = report.worst_response.iter().filter(|r| r.is_none()).count();
    let total: u128 = report
        .worst_response
        .iter()
        .flatten()
        .map(|t| u128::from(t.ticks()))
        .sum();
    (misses, total)
}

/// Searches for a per-task rotation assignment making `ts` provably
/// schedulable under the exact sweep. Returns the best assignment found
/// (check [`RotationAssignment::schedulable`]), or `None` when the
/// pattern hyperperiod exceeds the configured cap and nothing can be
/// proven.
///
/// # Examples
///
/// ```
/// use mkss_analysis::rotation::{find_rotation, RotationConfig};
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two tasks whose deeply-red clusters collide at t = 0: τ2's first
/// // mandatory job misses. Rotating τ2 by one position fixes it.
/// let ts = TaskSet::new(vec![
///     Task::from_ms(4, 4, 2, 2, 3)?,
///     Task::from_ms(6, 6, 3, 1, 2)?,
/// ])?;
/// assert!(!mkss_analysis::rta::is_schedulable_r_pattern(&ts));
/// let assignment = find_rotation(&ts, RotationConfig::default()).expect("small hyperperiod");
/// assert!(assignment.schedulable());
/// assert!(assignment.patterns.iter().any(|p| p.offset != 0));
/// # Ok(())
/// # }
/// ```
pub fn find_rotation(ts: &TaskSet, config: RotationConfig) -> Option<RotationAssignment> {
    if ts.hyperperiod() > config.max_hyperperiod {
        return None;
    }
    let cap = config.max_hyperperiod;
    let mut patterns: Vec<RotatedPattern> = vec![RotatedPattern::plain(config.base); ts.len()];
    let mut best_report = exact_sweep_rotated(ts, &patterns, cap);
    if best_report.schedulable_forever() {
        return Some(RotationAssignment {
            patterns,
            report: best_report,
        });
    }
    for _ in 0..config.max_passes {
        let mut improved = false;
        for (i, task) in ts.iter() {
            let k = task.mk().k();
            let mut best_offset = patterns[i.0].offset;
            let mut best_badness = badness(&best_report);
            for offset in 0..k {
                if offset == patterns[i.0].offset {
                    continue;
                }
                let mut candidate = patterns.clone();
                candidate[i.0].offset = offset;
                let report = exact_sweep_rotated(ts, &candidate, cap);
                let b = badness(&report);
                if b < best_badness {
                    best_badness = b;
                    best_offset = offset;
                }
            }
            if best_offset != patterns[i.0].offset {
                patterns[i.0].offset = best_offset;
                best_report = exact_sweep_rotated(ts, &patterns, cap);
                improved = true;
                if best_report.schedulable_forever() {
                    return Some(RotationAssignment {
                        patterns,
                        report: best_report,
                    });
                }
            }
        }
        if !improved {
            break;
        }
    }
    Some(RotationAssignment {
        patterns,
        report: best_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rta::is_schedulable_r_pattern;
    use mkss_core::task::Task;

    fn set(tasks: &[(u64, u64, u64, u32, u32)]) -> TaskSet {
        TaskSet::new(
            tasks
                .iter()
                .map(|&(p, d, c, m, k)| Task::from_ms(p, d, c, m, k).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn already_schedulable_sets_stay_unrotated() {
        let ts = set(&[(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)]);
        let a = find_rotation(&ts, RotationConfig::default()).unwrap();
        assert!(a.schedulable());
        assert!(a.patterns.iter().all(|p| p.offset == 0));
    }

    #[test]
    fn rotation_rescues_clustered_set() {
        // Unschedulable deeply-red (clusters collide), schedulable when
        // de-clustered.
        let ts = set(&[(4, 4, 2, 2, 3), (6, 6, 3, 1, 2)]);
        assert!(!is_schedulable_r_pattern(&ts));
        let a = find_rotation(&ts, RotationConfig::default()).unwrap();
        assert!(a.schedulable(), "report: {:?}", a.report);
    }

    #[test]
    fn hopeless_sets_reported_unschedulable() {
        // Mandatory utilization > 1: no rotation can help.
        let ts = set(&[(4, 4, 3, 3, 4), (5, 5, 3, 4, 5)]);
        let a = find_rotation(&ts, RotationConfig::default()).unwrap();
        assert!(!a.schedulable());
    }

    #[test]
    fn huge_hyperperiods_are_refused() {
        let ts = set(&[(10, 10, 3, 2, 3)]);
        let config = RotationConfig {
            max_hyperperiod: Time::from_ms(1),
            ..RotationConfig::default()
        };
        assert!(find_rotation(&ts, config).is_none());
    }

    #[test]
    fn rotated_verdicts_agree_with_dense_check() {
        // Cross-check one rescued assignment with a tick-dense simulation.
        let ts = set(&[(4, 4, 2, 2, 3), (6, 6, 3, 1, 2)]);
        let a = find_rotation(&ts, RotationConfig::default()).unwrap();
        assert!(a.schedulable());
        let horizon = ts.hyperperiod();
        let step = 1000; // 1 ms in ticks; all parameters are whole-ms
        let mut jobs: Vec<(u64, u64, u64, usize)> = Vec::new(); // rel, dl, rem, prio
        for (id, task) in ts.iter() {
            let count = horizon.div_floor(task.period());
            for j in 1..=count {
                if a.patterns[id.0].is_mandatory(task.mk(), j) {
                    jobs.push((
                        task.release_of(j).ticks(),
                        task.deadline_of(j).ticks(),
                        task.wcet().ticks(),
                        id.0,
                    ));
                }
            }
        }
        let mut t = 0;
        while t < horizon.ticks() {
            if let Some(job) = jobs
                .iter_mut()
                .filter(|j| j.0 <= t && j.2 > 0)
                .min_by_key(|j| j.3)
            {
                job.2 -= step;
                assert!(job.2 > 0 || t + step <= job.1, "deadline miss at {t}");
            }
            t += step;
        }
        assert!(
            jobs.iter().all(|j| j.2 == 0),
            "work left at the hyperperiod"
        );
    }
}
