//! Fixed-priority response-time analysis (RTA).
//!
//! Two interference models are provided:
//!
//! * [`InterferenceModel::AllJobs`] — classic RTA where every release of a
//!   higher-priority task interferes (the hard real-time setting of the
//!   dual-priority work the paper builds on).
//! * [`InterferenceModel::MandatoryOnly`] — only *mandatory* jobs under a
//!   static (m,k) pattern interfere. For the deeply-red pattern all tasks'
//!   mandatory jobs are clustered at the start of each window of `k·P`
//!   releases, so the synchronous release at time 0 is the critical
//!   instant (this is exactly the "shift left" argument in the proof of
//!   the paper's Theorem 1).
//!
//! Because the analysis for (m,k) patterns must consider *every* mandatory
//! job inside the level-i busy window (not just the first), the
//! schedulability test walks the busy window job by job.

use mkss_core::mk::Pattern;
use mkss_core::task::{TaskId, TaskSet};
use mkss_core::time::Time;
use serde::{Deserialize, Serialize};

/// Which releases of higher-priority tasks are counted as interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: the paper analyzes exactly the all-jobs and mandatory-only interference assumptions; consumers match exhaustively
pub enum InterferenceModel {
    /// Every job of every higher-priority task interferes.
    AllJobs,
    /// Only jobs that are mandatory under the given static pattern
    /// interfere (optional jobs are never forced, so a sound mandatory-job
    /// guarantee may ignore them — the schemes ensure optional jobs always
    /// yield to mandatory ones via the MJQ/OJQ split).
    MandatoryOnly(Pattern),
}

impl InterferenceModel {
    /// Number of interfering jobs of `task_id` released in a window
    /// `[0, t)` starting at the synchronous critical instant.
    fn interfering_jobs(self, ts: &TaskSet, task_id: TaskId, t: Time) -> u64 {
        let task = ts.task(task_id);
        let releases = t.div_ceil(task.period());
        match self {
            InterferenceModel::AllJobs => releases,
            InterferenceModel::MandatoryOnly(p) => p.mandatory_among(task.mk(), releases),
        }
    }
}

/// Iteration cap for the fixed-point loops; generous for any realistic
/// task set, small enough to terminate quickly on pathological input.
const MAX_ITERATIONS: usize = 100_000;

/// Worst-case response time of the **first** job of `task_id` released at
/// the synchronous critical instant, under the given interference model,
/// or `None` if the fixed point exceeds the deadline-search horizon (the
/// task is then unschedulable).
///
/// The fixed point is the classic
/// `R = C_i + Σ_{j<i} N_j(R)·C_j`
/// where `N_j` counts interfering jobs per [`InterferenceModel`].
///
/// # Examples
///
/// ```
/// use mkss_analysis::rta::{response_time, InterferenceModel};
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Section III example: τ1 = (5,4,3,2,4), τ2 = (10,10,3,1,2).
/// let ts = TaskSet::new(vec![
///     Task::from_ms(5, 4, 3, 2, 4)?,
///     Task::from_ms(10, 10, 3, 1, 2)?,
/// ])?;
/// let r1 = response_time(&ts, TaskId(0), InterferenceModel::AllJobs);
/// let r2 = response_time(&ts, TaskId(1), InterferenceModel::AllJobs);
/// // R1 = 3, R2 = 9 → promotion times Y1 = 4−3 = 1, Y2 = 10−9 = 1,
/// // matching the paper ("Y1 and Y2 … are calculated as 1 and 1").
/// assert_eq!(r1, Some(Time::from_ms(3)));
/// assert_eq!(r2, Some(Time::from_ms(9)));
/// # Ok(())
/// # }
/// ```
pub fn response_time(ts: &TaskSet, task_id: TaskId, model: InterferenceModel) -> Option<Time> {
    let task = ts.task(task_id);
    response_time_at(ts, task_id, model, task.wcet(), task.deadline())
}

/// Fixed-point solve of `R = demand + Σ_{j<i} N_j(R)·C_j`, bounded by
/// `horizon`. `demand` is the total own-task work that must finish
/// (used by the busy-window walk with multiple own jobs).
fn response_time_at(
    ts: &TaskSet,
    task_id: TaskId,
    model: InterferenceModel,
    demand: Time,
    horizon: Time,
) -> Option<Time> {
    let mut r = demand;
    for _ in 0..MAX_ITERATIONS {
        let interference: Time = ts
            .ids()
            .take(task_id.0)
            .map(|hp| ts.task(hp).wcet() * model.interfering_jobs(ts, hp, r))
            .sum();
        let next = demand + interference;
        if next == r {
            return Some(r);
        }
        if next > horizon {
            return None;
        }
        r = next;
    }
    None
}

/// Per-task result of a schedulability analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskResponse {
    /// The analysed task.
    pub task: TaskId,
    /// Worst-case response time over all (mandatory) jobs in the level-i
    /// busy window, or `None` if some job misses its deadline.
    pub response_time: Option<Time>,
}

/// Outcome of analysing a whole task set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulabilityReport {
    /// Interference model used.
    pub model: InterferenceModel,
    /// Per-task responses, in priority order.
    pub tasks: Vec<TaskResponse>,
}

impl SchedulabilityReport {
    /// Whether every task met its deadline.
    pub fn schedulable(&self) -> bool {
        self.tasks.iter().all(|t| t.response_time.is_some())
    }

    /// Worst-case response time of `task`, if schedulable.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for the analysed set.
    pub fn response_time(&self, task: TaskId) -> Option<Time> {
        self.tasks[task.0].response_time
    }
}

/// Analyses every task of `ts` with the busy-window RTA, checking **all**
/// interfering self-jobs inside the level-i busy window.
///
/// For [`InterferenceModel::AllJobs`] this is the classic exact test for
/// constrained-deadline FP. For
/// [`InterferenceModel::MandatoryOnly`]`(DeeplyRed)` it is the test behind
/// the paper's "schedulable under R-pattern" premise (Theorem 1): the
/// synchronous release is the critical instant because every task's
/// mandatory jobs are maximally clustered there.
///
/// ```
/// use mkss_analysis::rta::{analyze, InterferenceModel};
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![
///     Task::from_ms(5, 4, 3, 2, 4)?,
///     Task::from_ms(10, 10, 3, 1, 2)?,
/// ])?;
/// let report = analyze(&ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed));
/// assert!(report.schedulable());
/// # Ok(())
/// # }
/// ```
pub fn analyze(ts: &TaskSet, model: InterferenceModel) -> SchedulabilityReport {
    let tasks = ts
        .ids()
        .map(|id| TaskResponse {
            task: id,
            response_time: busy_window_response(ts, id, model),
        })
        .collect();
    SchedulabilityReport { model, tasks }
}

/// Convenience wrapper: is `ts` schedulable under the deeply-red pattern
/// (the premise of Theorem 1)?
pub fn is_schedulable_r_pattern(ts: &TaskSet) -> bool {
    analyze(ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed)).schedulable()
}

/// Walks the level-i busy window started at the synchronous release and
/// returns the worst response time over all own (interfering) jobs in it,
/// or `None` on a deadline miss.
fn busy_window_response(ts: &TaskSet, task_id: TaskId, model: InterferenceModel) -> Option<Time> {
    let task = ts.task(task_id);
    // Length of the level-i busy window: L = Σ_{j<=i} N_j(L)·C_j.
    let busy_len = {
        let mut l = task.wcet();
        let mut iterations = 0;
        loop {
            let next: Time = ts
                .ids()
                .take(task_id.0 + 1)
                .map(|j| ts.task(j).wcet() * model.interfering_jobs(ts, j, l))
                .sum();
            if next == l {
                break l;
            }
            iterations += 1;
            // Utilization ≥ 1 at this level → unbounded busy window. The
            // horizon `hyperperiod` is a safe cut-off: a busy window that
            // long necessarily contains a deadline miss for D ≤ P.
            if iterations > MAX_ITERATIONS || next > ts.hyperperiod() {
                return None;
            }
            l = next;
        }
    };

    let mut worst = Time::ZERO;
    let mut own_demand = Time::ZERO;
    let mut release_index = 0u64; // 0-based release counter
    loop {
        let release = task.period() * release_index;
        if release >= busy_len && release_index > 0 {
            break;
        }
        let job_number = release_index + 1;
        let counts = match model {
            InterferenceModel::AllJobs => true,
            InterferenceModel::MandatoryOnly(p) => p.is_mandatory(task.mk(), job_number),
        };
        if counts {
            own_demand += task.wcet();
            // Finish time of this job: all own mandatory work up to and
            // including it, plus higher-priority interference.
            let finish =
                response_time_at(ts, task_id, model, own_demand, release + task.deadline())?;
            if finish < release {
                // The busy window actually ended before this release; the
                // job starts a fresh (no-carry-in) window no worse than
                // the synchronous one already analysed.
                break;
            }
            let resp = finish - release;
            if resp > task.deadline() {
                return None;
            }
            worst = worst.max(resp);
        }
        release_index += 1;
        if release_index > 1_000_000 {
            // Defensive cap; busy windows this long only arise from
            // pathological inputs which `busy_len` bounds already.
            return None;
        }
    }
    Some(worst)
}

/// Promotion time `Y_i = D_i − R_i` (Eq. 2) for every task, or `None` if
/// some task is unschedulable under the model.
///
/// Backups scheduled with the dual-priority scheme may be released `Y_i`
/// late and still meet every deadline.
///
/// ```
/// use mkss_analysis::rta::{promotion_times, InterferenceModel};
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![
///     Task::from_ms(5, 4, 3, 2, 4)?,
///     Task::from_ms(10, 10, 3, 1, 2)?,
/// ])?;
/// let y = promotion_times(&ts, InterferenceModel::AllJobs).unwrap();
/// assert_eq!(y, vec![Time::from_ms(1), Time::from_ms(1)]);
/// # Ok(())
/// # }
/// ```
pub fn promotion_times(ts: &TaskSet, model: InterferenceModel) -> Option<Vec<Time>> {
    let report = analyze(ts, model);
    ts.ids()
        .map(|id| report.response_time(id).map(|r| ts.task(id).deadline() - r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::task::Task;

    fn set(tasks: &[(u64, u64, u64, u32, u32)]) -> TaskSet {
        TaskSet::new(
            tasks
                .iter()
                .map(|&(p, d, c, m, k)| Task::from_ms(p, d, c, m, k).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn classic_rta_single_task() {
        let ts = set(&[(10, 10, 4, 1, 2)]);
        assert_eq!(
            response_time(&ts, TaskId(0), InterferenceModel::AllJobs),
            Some(Time::from_ms(4))
        );
    }

    #[test]
    fn classic_rta_two_tasks() {
        let ts = set(&[(5, 4, 3, 2, 4), (10, 10, 3, 1, 2)]);
        // τ2's first job: 3 own + two τ1 jobs (at 0 and 5) → R = 9.
        assert_eq!(
            response_time(&ts, TaskId(1), InterferenceModel::AllJobs),
            Some(Time::from_ms(9))
        );
    }

    #[test]
    fn paper_promotion_times_section_iii() {
        let ts = set(&[(5, 4, 3, 2, 4), (10, 10, 3, 1, 2)]);
        let y = promotion_times(&ts, InterferenceModel::AllJobs).unwrap();
        assert_eq!(y, vec![Time::from_ms(1), Time::from_ms(1)]);
    }

    #[test]
    fn unschedulable_all_jobs() {
        // τ2 cannot fit: τ1 hogs 3 of every 4ms, τ2 needs 3 in 8.
        let ts = set(&[(4, 4, 3, 1, 2), (8, 8, 3, 1, 2)]);
        assert_eq!(
            response_time(&ts, TaskId(1), InterferenceModel::AllJobs),
            None
        );
        assert!(!analyze(&ts, InterferenceModel::AllJobs).schedulable());
    }

    #[test]
    fn mandatory_only_interference_is_lighter() {
        // Same set is schedulable once τ1's optional jobs are ignored:
        // (1,2) pattern halves τ1's interference.
        let ts = set(&[(4, 4, 3, 1, 2), (8, 8, 3, 1, 2)]);
        let model = InterferenceModel::MandatoryOnly(Pattern::DeeplyRed);
        // τ2's first job: 3 own + τ1 mandatory jobs at 0 (mandatory), 4
        // (optional under (1,2): job 2) → only job 1 and job 3 (at 8)…
        // within R: R = 3+3 = 6 ≤ 8.
        assert_eq!(response_time(&ts, TaskId(1), model), Some(Time::from_ms(6)));
        assert!(analyze(&ts, model).schedulable());
    }

    #[test]
    fn fig3_set_schedulable_under_r_pattern() {
        // τ1 = (5, 2.5, 2, 2, 4), τ2 = (4, 4, 2, 2, 4).
        let ts = TaskSet::new(vec![
            Task::new(
                Time::from_ms(5),
                Time::from_us(2_500),
                Time::from_ms(2),
                2,
                4,
            )
            .unwrap(),
            Task::from_ms(4, 4, 2, 2, 4).unwrap(),
        ])
        .unwrap();
        assert!(is_schedulable_r_pattern(&ts));
    }

    #[test]
    fn fig5_set_schedulable_under_r_pattern() {
        let ts = set(&[(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)]);
        assert!(is_schedulable_r_pattern(&ts));
        let report = analyze(&ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed));
        // τ1 alone: R = 3. τ2: 8 own + interference.
        assert_eq!(report.response_time(TaskId(0)), Some(Time::from_ms(3)));
    }

    #[test]
    fn busy_window_checks_later_jobs() {
        // A case where the *second* mandatory job of τ2 is the critical
        // one. τ1 = (4,4,2,2,3); τ2 = (6,6,3,2,3): τ2 jobs at 0 and 6
        // are both mandatory; the level-2 busy window spans both.
        let ts = set(&[(4, 4, 2, 2, 3), (6, 6, 3, 2, 3)]);
        let model = InterferenceModel::MandatoryOnly(Pattern::DeeplyRed);
        let report = analyze(&ts, model);
        // Busy window: τ1 mandatory at 0,4 (jobs 1,2; job 3 at 8 optional),
        // τ2 mandatory at 0,6.
        // t=0: τ1 J1 runs [0,2), τ2 J1 runs [2,5) with τ1 J2 preempting at
        // 4: τ2 J1 finishes… demand-based: F1 = 3 + N1(F1)*2:
        // F=5 → N1(5)=2 → F=7 ≥ deadline 6? N1(5)= ceil(5/4)=2 both
        // mandatory → F = 3+4 = 7 > 6 → unschedulable.
        assert!(!report.schedulable());
    }

    #[test]
    fn rta_respects_model_distinction() {
        let ts = set(&[(5, 5, 2, 1, 5), (7, 7, 3, 1, 2)]);
        let all = response_time(&ts, TaskId(1), InterferenceModel::AllJobs).unwrap();
        let mand = response_time(
            &ts,
            TaskId(1),
            InterferenceModel::MandatoryOnly(Pattern::DeeplyRed),
        )
        .unwrap();
        assert!(mand <= all);
    }

    #[test]
    fn report_shape() {
        let ts = set(&[(5, 4, 3, 2, 4), (10, 10, 3, 1, 2)]);
        let report = analyze(&ts, InterferenceModel::AllJobs);
        assert_eq!(report.tasks.len(), 2);
        assert_eq!(report.tasks[0].task, TaskId(0));
        assert!(report.schedulable());
    }
}
