//! Exact schedulability analysis by event-driven sweep of the
//! mandatory-job schedule.
//!
//! The busy-window RTA in [`crate::rta`] bounds response times from the
//! synchronous critical instant. For the deeply-red pattern that bound is
//! tight (all patterns are maximally clustered at time 0), which this
//! module lets us *verify*: it simulates the single-processor
//! fixed-priority preemptive schedule of the mandatory jobs over (a
//! bounded prefix of) the pattern hyperperiod and reports the worst
//! observed response time per task.
//!
//! It doubles as the exact test for patterns whose critical instant is
//! not the synchronous release (e.g. the evenly-distributed pattern,
//! where the RTA's first-window interference count is only a heuristic).

use mkss_core::mk::Pattern;
use mkss_core::task::{TaskId, TaskSet};
use mkss_core::time::Time;
use serde::{Deserialize, Serialize};

/// Result of the exact sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactReport {
    /// Span actually swept.
    pub horizon: Time,
    /// Worst observed response time per task (priority order); `None`
    /// if some job of the task missed its deadline.
    pub worst_response: Vec<Option<Time>>,
    /// Whether the swept span covered the full pattern hyperperiod *and*
    /// all work released inside it completed by its end — in that case
    /// the schedule repeats and the verdict holds forever.
    pub repeats: bool,
}

impl ExactReport {
    /// Whether every mandatory job met its deadline in the swept span.
    pub fn schedulable(&self) -> bool {
        self.worst_response.iter().all(Option::is_some)
    }

    /// Whether the sweep *proves* schedulability: no misses and the
    /// schedule provably repeats beyond the swept span.
    pub fn schedulable_forever(&self) -> bool {
        self.schedulable() && self.repeats
    }
}

/// Sweeps the mandatory-only fixed-priority schedule (synchronous
/// release, one processor) over `min(pattern hyperperiod, cap)`.
///
/// Jobs released within the horizon but finishing beyond it are followed
/// to completion, so every released job is accounted for.
///
/// # Examples
///
/// ```
/// use mkss_analysis::exact::exact_sweep;
/// use mkss_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![
///     Task::from_ms(10, 10, 3, 2, 3)?,
///     Task::from_ms(15, 15, 8, 1, 2)?,
/// ])?;
/// let report = exact_sweep(&ts, Pattern::DeeplyRed, Time::from_ms(10_000));
/// assert!(report.schedulable());
/// // τ2's first job finishes at 14: response 14 ms (matches the RTA).
/// assert_eq!(report.worst_response[1], Some(Time::from_ms(14)));
/// # Ok(())
/// # }
/// ```
pub fn exact_sweep(ts: &TaskSet, pattern: Pattern, cap: Time) -> ExactReport {
    exact_sweep_with(ts, cap, |task, j| {
        pattern.is_mandatory(ts.task(TaskId(task)).mk(), j)
    })
}

/// Like [`exact_sweep`], with per-task rotated patterns (Quan & Hu style
/// offsets). Rotation invalidates the synchronous-critical-instant
/// argument, so this sweep — with
/// [`ExactReport::schedulable_forever`] — is the correct schedulability
/// test for rotated assignments.
///
/// # Panics
///
/// Panics if `patterns.len() != ts.len()`.
pub fn exact_sweep_rotated(
    ts: &TaskSet,
    patterns: &[mkss_core::mk::RotatedPattern],
    cap: Time,
) -> ExactReport {
    assert_eq!(patterns.len(), ts.len(), "one pattern per task");
    exact_sweep_with(ts, cap, |task, j| {
        patterns[task].is_mandatory(ts.task(TaskId(task)).mk(), j)
    })
}

/// Event-driven sweep with an arbitrary per-task mandatory predicate.
fn exact_sweep_with(
    ts: &TaskSet,
    cap: Time,
    is_mandatory: impl Fn(usize, u64) -> bool,
) -> ExactReport {
    let horizon = ts.hyperperiod().min(cap);
    let covers_hyperperiod = horizon == ts.hyperperiod();
    let n = ts.len();
    // Per-task state.
    let mut next_index = vec![1u64; n];
    // Ready mandatory jobs: (task, release, deadline, remaining).
    struct Ready {
        task: usize,
        release: Time,
        deadline: Time,
        remaining: Time,
    }
    let mut ready: Vec<Ready> = Vec::new();
    let mut worst: Vec<Option<Time>> = vec![Some(Time::ZERO); n];
    let mut clock = Time::ZERO;

    // Advance each task's next_index past optional jobs, returning the
    // release time of its next mandatory job within the horizon.
    let next_mandatory = |ts: &TaskSet, next_index: &mut [u64], task: usize| -> Option<Time> {
        let t = ts.task(TaskId(task));
        loop {
            let j = next_index[task];
            let release = t.release_of(j);
            if release >= horizon {
                return None;
            }
            if is_mandatory(task, j) {
                return Some(release);
            }
            next_index[task] += 1;
        }
    };

    loop {
        // Next release among all tasks.
        let mut next_release: Option<Time> = None;
        for task in 0..n {
            if let Some(r) = next_mandatory(ts, &mut next_index, task) {
                next_release = Some(next_release.map_or(r, |cur: Time| cur.min(r)));
            }
        }
        // Admit releases at the current time.
        for task in 0..n {
            while let Some(r) = next_mandatory(ts, &mut next_index, task) {
                if r > clock {
                    break;
                }
                let t = ts.task(TaskId(task));
                ready.push(Ready {
                    task,
                    release: r,
                    deadline: r + t.deadline(),
                    remaining: t.wcet(),
                });
                next_index[task] += 1;
            }
        }
        // Highest-priority ready job.
        let Some(pos) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| (j.task, j.release))
            .map(|(i, _)| i)
        else {
            // Idle: jump to the next release or finish.
            match next_release {
                Some(r) if r < horizon => {
                    clock = r;
                    continue;
                }
                _ => break,
            }
        };
        // Run until completion or the next release, whichever is first.
        let job_end = clock + ready[pos].remaining;
        let until = match next_release {
            Some(r) if r < job_end => r,
            _ => job_end,
        };
        ready[pos].remaining -= until - clock;
        clock = until;
        if ready[pos].remaining.is_zero() {
            let job = ready.swap_remove(pos);
            let response = clock - job.release;
            let slot = &mut worst[job.task];
            if clock > job.deadline {
                *slot = None;
            } else if let Some(w) = slot {
                *slot = Some((*w).max(response));
            }
        }
    }
    // `clock` ends at the last completion (or the last release jump);
    // if every released job finished by the hyperperiod boundary, the
    // synchronous schedule repeats.
    let repeats = covers_hyperperiod && clock <= horizon;
    ExactReport {
        horizon,
        worst_response: worst,
        repeats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rta::{analyze, InterferenceModel};
    use mkss_core::task::Task;
    use proptest::prelude::*;

    fn set(tasks: &[(u64, u64, u64, u32, u32)]) -> TaskSet {
        TaskSet::new(
            tasks
                .iter()
                .map(|&(p, d, c, m, k)| Task::from_ms(p, d, c, m, k).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_task_response_is_wcet() {
        let ts = set(&[(10, 10, 3, 1, 2)]);
        let report = exact_sweep(&ts, Pattern::DeeplyRed, Time::from_ms(1_000));
        assert_eq!(report.worst_response, vec![Some(Time::from_ms(3))]);
    }

    #[test]
    fn fig5_set_matches_rta() {
        let ts = set(&[(10, 10, 3, 2, 3), (15, 15, 8, 1, 2)]);
        let exact = exact_sweep(&ts, Pattern::DeeplyRed, Time::from_ms(100_000));
        let rta = analyze(&ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed));
        assert!(exact.schedulable());
        for (id, _) in ts.iter() {
            assert_eq!(exact.worst_response[id.0], rta.response_time(id));
        }
    }

    #[test]
    fn unschedulable_detected() {
        let ts = set(&[(4, 4, 3, 2, 3), (6, 6, 3, 2, 3)]);
        let report = exact_sweep(&ts, Pattern::DeeplyRed, Time::from_ms(10_000));
        assert!(!report.schedulable());
        assert!(report.worst_response[0].is_some());
        assert!(report.worst_response[1].is_none());
    }

    #[test]
    fn horizon_cap_respected() {
        let ts = set(&[(7, 7, 2, 1, 5), (11, 11, 3, 2, 3)]);
        let report = exact_sweep(&ts, Pattern::DeeplyRed, Time::from_ms(50));
        assert!(report.horizon <= Time::from_ms(50));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For the deeply-red pattern the synchronous release is the
        /// critical instant, so the busy-window RTA is *exact*: the sweep
        /// must observe the same worst responses (over the full pattern
        /// hyperperiod) and the same schedulability verdict.
        #[test]
        fn rta_is_tight_for_deeply_red(
            seed in 0u64..10_000,
            util_pct in 10u64..80,
        ) {
            use mkss_workload::{Generator, WorkloadConfig};
            let config = WorkloadConfig {
                tasks_min: 2,
                tasks_max: 4,
                period_ms: (4, 12), // small periods keep hyperperiods enumerable
                k_range: (2, 4),
                ..WorkloadConfig::paper()
            };
            let Some(ts) = Generator::new(config, seed).raw_set(util_pct as f64 / 100.0) else {
                return Ok(());
            };
            let hyper = ts.hyperperiod();
            prop_assume!(hyper <= Time::from_ms(100_000));
            let exact = exact_sweep(&ts, Pattern::DeeplyRed, hyper);
            let rta = analyze(&ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed));
            prop_assert_eq!(exact.schedulable(), rta.schedulable());
            if rta.schedulable() {
                for (id, _) in ts.iter() {
                    prop_assert_eq!(
                        exact.worst_response[id.0],
                        rta.response_time(id),
                        "task {} differs", id
                    );
                }
            }
        }

        /// The E-pattern sweep is bounded by the (heuristic) RTA result
        /// whenever the RTA claims schedulability with margin.
        #[test]
        fn e_pattern_sweep_runs(seed in 0u64..3_000) {
            use mkss_workload::{Generator, WorkloadConfig};
            let config = WorkloadConfig {
                tasks_min: 2,
                tasks_max: 3,
                period_ms: (4, 10),
                k_range: (2, 4),
                ..WorkloadConfig::paper()
            };
            let Some(ts) = Generator::new(config, seed).raw_set(0.3) else { return Ok(()); };
            prop_assume!(ts.hyperperiod() <= Time::from_ms(100_000));
            let report = exact_sweep(&ts, Pattern::EvenlyDistributed, ts.hyperperiod());
            prop_assert_eq!(report.worst_response.len(), ts.len());
        }
    }
}
