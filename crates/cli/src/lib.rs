//! # mkss-cli
//!
//! Command-line front end for the `mkss` standby-sparing toolkit:
//!
//! ```text
//! mkss-cli analyze  <taskset.json>
//! mkss-cli simulate <taskset.json> --policy selective --horizon-ms 1000
//!                   [--permanent primary@7] [--transient 1e-6] [--seed 42]
//!                   [--gantt] [--vcd out.vcd] [--active-only]
//! mkss-cli generate --util 0.45 --seed 7 [--tasks 5..10]
//! mkss-cli policies
//! mkss-cli serve   --socket /tmp/mkss.sock
//! mkss-cli top     --socket /tmp/mkss.sock [--interval-ms 500] [--frames N]
//! mkss-cli metrics --socket /tmp/mkss.sock [--json]
//! ```
//!
//! The command logic lives in [`run`] (returning the full stdout text) so
//! the whole surface is unit-testable without spawning processes; the
//! binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;

use std::error::Error as StdError;
use std::fmt;
use std::io::IsTerminal;

use std::sync::Arc;

use mkss_analysis::postpone::{postponement_intervals, PostponeConfig};
use mkss_analysis::rta::{analyze, InterferenceModel};
use mkss_core::mk::Pattern;
use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use mkss_obs::{
    chrome_trace, violation_reports, EchoRecorder, LogLevel, MetricsDoc, Recorder, Registry,
    Reporter, Stopwatch, TraceRecorder, DEFAULT_TRACE_CAPACITY,
};
use mkss_policies::{BuildOptions, PolicyKind};
use mkss_sim::engine::{simulate_in, SimConfig, SimWorkspace};
use mkss_sim::fault::FaultConfig;
use mkss_sim::pool::WorkspacePool;
use mkss_sim::power::PowerModel;
use mkss_sim::proc::ProcId;
use mkss_sim::vcd::render_vcd;
use mkss_top::{Target, TopConfig};
use mkss_workload::{Generator, WorkloadConfig};

use format::TaskSetSpec;

/// CLI error: bad usage/input, or an I/O failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Invalid flags or file contents.
    Input(String),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Input(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl StdError for CliError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Input(_) => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: mkss-cli <command> [args]

commands:
  analyze  <taskset.json>                      schedulability, Y and θ analysis
  simulate <taskset.json> [--policy P] [--horizon-ms N] [--seed S]
           [--permanent primary@MS|spare@MS] [--transient RATE_PER_MS]
           [--gantt] [--vcd FILE] [--active-only]
  compare  <taskset.json> [--horizon-ms N] [--jobs N] [--metrics-out FILE]
           [--trace-out FILE]
           run every policy, print one row each; --trace-out captures every
           run through the flight recorder and writes one Chrome Trace
           Event JSON (open in Perfetto / chrome://tracing)
  generate [--util U] [--seed S] [--tasks MIN..MAX]  emit a schedulable set as JSON
  policies                                     list available policies
  serve    (--socket PATH | --tcp ADDR) [--workers N] [--queue N] [--fanout N]
           run the line-protocol simulation daemon until a shutdown request
  top      (--socket PATH | --tcp ADDR) [--interval-ms N] [--frames N]
           [--plain] [--poll]
           live dashboard over the daemon's streaming watch op (falls back
           to polling the metrics op with --poll); auto-plain when stdout
           is not a terminal
  metrics  (--socket PATH | --tcp ADDR) [--json]
           fetch the daemon's metrics document once and pretty-print it

environment:
  MKSS_LOG=off|summary|events  attach an engine-event recorder to simulate
           and compare: `summary` prints a counter table on stderr at the
           end, `events` additionally narrates every engine event
";

/// Executes a CLI invocation and returns its stdout text.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands/flags, malformed inputs, or
/// I/O failures. The binary prints the error and exits non-zero.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Input(USAGE.to_owned()));
    };
    match command.as_str() {
        "analyze" => cmd_analyze(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "policies" => Ok(cmd_policies()),
        "serve" => cmd_serve(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "--help" | "-h" | "help" => Ok(USAGE.to_owned()),
        other => Err(CliError::Input(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    }
}

fn load_task_set(path: &str) -> Result<TaskSet, CliError> {
    let body = std::fs::read_to_string(path)?;
    TaskSetSpec::parse(&body)?.to_task_set()
}

/// Reads the `MKSS_LOG` filter, mapping a malformed value to a usage error.
fn log_level() -> Result<LogLevel, CliError> {
    LogLevel::from_env().map_err(|e| CliError::Input(e.to_string()))
}

/// Prints the end-of-run counter table on `reporter`, one line at a time
/// so concurrent writers cannot interleave inside it.
fn report_summary_table(reporter: &Reporter, registry: &Registry) {
    for line in MetricsDoc::new(registry.snapshot()).render_table().lines() {
        reporter.line(line);
    }
}

fn cmd_policies() -> String {
    let mut out = String::new();
    for kind in PolicyKind::ALL {
        out.push_str(&format!("{:<20} {:?}\n", kind.id(), kind));
    }
    out
}

fn cmd_analyze(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::Input(
            "analyze expects exactly one task-set file".into(),
        ));
    };
    let ts = load_task_set(path)?;
    let mut out = String::new();
    out.push_str(&ts.to_string());
    out.push_str(&format!(
        "utilization: {:.4}   (m,k)-utilization: {:.4}   hyperperiod: {}\n",
        ts.utilization(),
        ts.mk_utilization(),
        ts.hyperperiod(),
    ));
    let report = analyze(&ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed));
    out.push_str(&format!(
        "schedulable under R-pattern: {}\n",
        report.schedulable()
    ));
    for t in &report.tasks {
        match t.response_time {
            Some(r) => out.push_str(&format!("  {}: R = {r}\n", t.task)),
            None => out.push_str(&format!("  {}: deadline miss\n", t.task)),
        }
    }
    if report.schedulable() {
        let post = postponement_intervals(&ts, PostponeConfig::default())
            .map_err(|e| CliError::Input(e.to_string()))?;
        for (id, _) in ts.iter() {
            out.push_str(&format!(
                "  {id}: promotion Y = {}, postponement θ = {}\n",
                post.promotion[id.0], post.theta[id.0]
            ));
        }
    }
    Ok(out)
}

fn cmd_simulate(args: &[String]) -> Result<String, CliError> {
    let Some(path) = args.first() else {
        return Err(CliError::Input("simulate expects a task-set file".into()));
    };
    let ts = load_task_set(path)?;
    let mut policy_kind = PolicyKind::Selective;
    let mut horizon = Time::from_ms(1_000);
    let mut faults = FaultConfig::none();
    let mut gantt = false;
    let mut vcd_path: Option<String> = None;
    let mut power = PowerModel::default();
    let mut seed = 0u64;
    let mut transient = 0.0f64;
    let mut permanent: Option<(ProcId, Time)> = None;

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Input(format!("flag {flag} expects a value")))
        };
        match flag.as_str() {
            "--policy" => {
                policy_kind = value()?.parse().map_err(
                    |e: mkss_policies::registry::ParsePolicyKindError| {
                        CliError::Input(e.to_string())
                    },
                )?
            }
            "--horizon-ms" => {
                horizon = Time::from_ms(
                    value()?
                        .parse()
                        .map_err(|e| CliError::Input(format!("--horizon-ms: {e}")))?,
                )
            }
            "--seed" => {
                seed = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--seed: {e}")))?
            }
            "--transient" => {
                transient = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--transient: {e}")))?
            }
            "--permanent" => {
                let v = value()?;
                let (proc, at) = v.split_once('@').ok_or_else(|| {
                    CliError::Input("--permanent expects primary@MS or spare@MS".into())
                })?;
                let proc = match proc {
                    "primary" => ProcId::PRIMARY,
                    "spare" => ProcId::SPARE,
                    other => return Err(CliError::Input(format!("unknown processor '{other}'"))),
                };
                let ms: u64 = at
                    .parse()
                    .map_err(|e| CliError::Input(format!("--permanent time: {e}")))?;
                permanent = Some((proc, Time::from_ms(ms)));
            }
            "--gantt" => gantt = true,
            "--vcd" => vcd_path = Some(value()?),
            "--active-only" => power = PowerModel::active_only(),
            other => return Err(CliError::Input(format!("unknown flag '{other}'"))),
        }
    }
    faults.transient_rate_per_ms = transient;
    faults.seed = seed;
    if let Some((proc, at)) = permanent {
        faults.permanent = Some(mkss_sim::fault::PermanentFault { proc, at });
    }

    let mut policy = policy_kind
        .build(&ts, &BuildOptions::default())
        .map_err(|e| CliError::Input(e.to_string()))?;
    let config = SimConfig::builder()
        .horizon(horizon)
        .power(power)
        .faults(faults)
        .record_trace(gantt || vcd_path.is_some())
        .build();
    // MKSS_LOG attaches a recorder to the workspace; the report itself is
    // byte-identical with and without it (recorders only observe).
    let log = log_level()?;
    let mut ws = SimWorkspace::new();
    let obs = if log.enabled() {
        let registry = Arc::new(Registry::new(1));
        let reporter = Arc::new(Reporter::stderr());
        let recorder: Arc<dyn Recorder> = match log {
            LogLevel::Events => Arc::new(EchoRecorder::new(
                registry.handle_at(0),
                Arc::clone(&reporter),
            )),
            _ => Arc::new(registry.handle_at(0)),
        };
        ws.set_recorder(Some(recorder));
        Some((registry, reporter))
    } else {
        None
    };
    let report = simulate_in(&mut ws, &ts, policy.as_mut(), &config);

    let mut out = String::new();
    out.push_str(&format!("policy: {}\n", report.policy));
    out.push_str(&format!(
        "energy: total {} (active {}), per processor: primary {} / spare {}\n",
        report.total_energy(),
        report.active_energy(),
        report.energy[0].total(),
        report.energy[1].total(),
    ));
    out.push_str(&format!(
        "jobs: released {}, mandatory {}, optional selected {}, skipped {}, abandoned {}\n",
        report.stats.released,
        report.stats.mandatory,
        report.stats.optional_selected,
        report.stats.optional_skipped,
        report.stats.optional_abandoned,
    ));
    out.push_str(&format!(
        "outcomes: met {}, missed {}; backups canceled {}, completed {}; transient faults {}, copies lost {}\n",
        report.stats.met,
        report.stats.missed,
        report.stats.backups_canceled,
        report.stats.backups_completed,
        report.stats.transient_faults,
        report.stats.copies_lost,
    ));
    out.push_str(&format!("(m,k) assured: {}\n", report.mk_assured()));
    for v in &report.violations {
        out.push_str(&format!(
            "  violation: task {} at job {}\n",
            v.task, v.job_index
        ));
    }
    if let Some(trace) = &report.trace {
        if gantt {
            out.push_str(&trace.render_gantt_ms(horizon.min(Time::from_ms(120))));
        }
        if let Some(path) = vcd_path {
            std::fs::write(&path, render_vcd(trace, ts.len()))?;
            out.push_str(&format!("wrote VCD to {path}\n"));
        }
    }
    if let Some((registry, reporter)) = &obs {
        report_summary_table(reporter, registry);
    }
    Ok(out)
}

fn cmd_compare(args: &[String]) -> Result<String, CliError> {
    let Some(path) = args.first() else {
        return Err(CliError::Input("compare expects a task-set file".into()));
    };
    let ts = load_task_set(path)?;
    let mut horizon = Time::from_ms(1_000);
    let mut jobs = 0usize;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| CliError::Input(format!("flag {flag} expects a value")))
        };
        match flag.as_str() {
            "--horizon-ms" => {
                horizon = Time::from_ms(
                    value()?
                        .parse()
                        .map_err(|e| CliError::Input(format!("--horizon-ms: {e}")))?,
                );
            }
            "--jobs" => {
                jobs = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--jobs: {e}")))?;
            }
            "--metrics-out" => metrics_out = Some(value()?.clone()),
            "--trace-out" => trace_out = Some(value()?.clone()),
            other => return Err(CliError::Input(format!("unknown flag '{other}'"))),
        }
    }
    let config = SimConfig::builder().horizon(horizon).build();
    // A registry is wanted for `--metrics-out` and for any MKSS_LOG level;
    // each worker aggregates into its own shard so totals are identical
    // for every `--jobs` value.
    let log = log_level()?;
    let registry = (metrics_out.is_some() || log.enabled())
        .then(|| Arc::new(Registry::new(mkss_core::par::effective_jobs(jobs))));
    let reporter = log.enabled().then(|| Arc::new(Reporter::stderr()));
    let recorders: Vec<Arc<dyn Recorder>> = registry
        .as_ref()
        .map(|registry| {
            (0..registry.shard_count())
                .map(|shard| {
                    let handle = registry.handle_at(shard);
                    match (log, &reporter) {
                        (LogLevel::Events, Some(reporter)) => {
                            Arc::new(EchoRecorder::new(handle, Arc::clone(reporter)))
                                as Arc<dyn Recorder>
                        }
                        _ => Arc::new(handle) as Arc<dyn Recorder>,
                    }
                })
                .collect()
        })
        .unwrap_or_default();
    // `--trace-out` gives every policy its own flight recorder (wrapping
    // that worker's shard recorder when metrics/logging are also on), so
    // each captured stream — and therefore the exported file — is
    // byte-identical for every `--jobs` value.
    let tracers: Option<Vec<Arc<TraceRecorder>>> = trace_out.as_ref().map(|_| {
        (0..PolicyKind::ALL.len())
            .map(|index| {
                Arc::new(match recorders.is_empty() {
                    true => TraceRecorder::with_capacity(DEFAULT_TRACE_CAPACITY),
                    false => TraceRecorder::wrapping(
                        Arc::clone(&recorders[index % recorders.len()]),
                        DEFAULT_TRACE_CAPACITY,
                    ),
                })
            })
            .collect()
    });
    // Every policy simulates the same set independently — fan them out;
    // rows are then rendered in registry order, so the output (including
    // the "first applicable policy" normalization reference) is identical
    // to the serial loop. Workers draw reusable arenas from a shared pool
    // (the same abstraction the `mkss-serve` daemon sessions use).
    let pool = WorkspacePool::new();
    let watch = Stopwatch::start();
    let rows = mkss_core::par::map_indexed(jobs, &PolicyKind::ALL, |index, &kind| {
        let Ok(mut policy) = kind.build(&ts, &BuildOptions::default()) else {
            return None;
        };
        let recorder: Option<Arc<dyn Recorder>> = match &tracers {
            Some(tracers) => Some(Arc::clone(&tracers[index]) as Arc<dyn Recorder>),
            None => {
                (!recorders.is_empty()).then(|| Arc::clone(&recorders[index % recorders.len()]))
            }
        };
        let report = {
            let mut ws = pool.checkout();
            ws.set_recorder(recorder);
            simulate_in(&mut ws, &ts, policy.as_mut(), &config)
        };
        Some((
            report.total_energy().units(),
            report.active_energy().units(),
            report.stats.met,
            report.stats.missed,
            report.mk_assured(),
        ))
    });
    let simulate_ms = watch.elapsed_ms();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>7} {:>7} {:>10}
",
        "policy", "total", "active", "met", "missed", "(m,k) ok"
    ));
    let mut reference: Option<f64> = None;
    for (kind, row) in PolicyKind::ALL.into_iter().zip(rows) {
        let Some((total, active, met, missed, mk_ok)) = row else {
            out.push_str(&format!(
                "{:<20} (not applicable to this set)
",
                kind.id()
            ));
            continue;
        };
        let reference = *reference.get_or_insert(total);
        out.push_str(&format!(
            "{:<20} {:>11.3}u {:>11.3}u {:>7} {:>7} {:>10} ({:.3}x)
",
            kind.id(),
            total,
            active,
            met,
            missed,
            mk_ok,
            if reference > 0.0 {
                total / reference
            } else {
                f64::NAN
            },
        ));
    }
    if let (Some(path), Some(tracers)) = (&trace_out, &tracers) {
        let buffers: Vec<mkss_obs::TraceBuffer> =
            tracers.iter().map(|tracer| tracer.snapshot()).collect();
        let runs: Vec<(&str, &mkss_obs::TraceBuffer)> = PolicyKind::ALL
            .iter()
            .map(|kind| kind.id())
            .zip(&buffers)
            .collect();
        std::fs::write(path, chrome_trace(&runs))?;
        out.push_str(&format!("wrote trace to {path}\n"));
        // Violation forensics: any run that tipped an (m,k) constraint gets
        // its reconstructed window and recent-event tail printed inline.
        for (label, buffer) in &runs {
            for report in violation_reports(buffer, 16) {
                out.push_str(&format!("[{label}] {}", report.render()));
            }
        }
    }
    if let (Some(path), Some(registry)) = (&metrics_out, &registry) {
        let doc = mkss_obs::metrics_doc(
            "mkss-cli compare",
            registry.snapshot(),
            &[
                ("policies", PolicyKind::ALL.len().to_string()),
                ("jobs", mkss_core::par::effective_jobs(jobs).to_string()),
            ],
            &[("simulate_ms", simulate_ms)],
        );
        std::fs::write(path, doc.to_json())?;
        out.push_str(&format!("wrote metrics to {path}\n"));
    }
    if let (Some(registry), Some(reporter)) = (&registry, &reporter) {
        report_summary_table(reporter, registry);
    }
    Ok(out)
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut config = mkss_serve::ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Input(format!("flag {flag} expects a value")))
        };
        match flag.as_str() {
            "--socket" => socket = Some(value()?),
            "--tcp" => tcp = Some(value()?),
            "--workers" => {
                config.workers = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--workers: {e}")))?;
            }
            "--queue" => {
                config.queue_capacity = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--queue: {e}")))?;
            }
            "--fanout" => {
                config.fanout = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--fanout: {e}")))?;
            }
            other => return Err(CliError::Input(format!("unknown flag '{other}'"))),
        }
    }
    let server = match (&socket, &tcp) {
        (Some(path), None) => mkss_serve::Server::bind_unix(path, config)?,
        (None, Some(addr)) => mkss_serve::Server::bind_tcp(addr, config)?,
        _ => {
            return Err(CliError::Input(
                "serve expects exactly one of --socket PATH or --tcp ADDR".into(),
            ))
        }
    };
    let endpoint = server.endpoint();
    // Readiness goes to stderr so scripts can poll for it without
    // touching the (blocked-until-shutdown) stdout text.
    let reporter = Reporter::stderr();
    reporter.line(&format!("mkss-serve listening on {endpoint}"));
    let totals = server.run();
    let mut out = format!("daemon on {endpoint} shut down cleanly\n");
    for line in MetricsDoc::new(totals).render_table().lines() {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Folds the mutually exclusive `--socket` / `--tcp` flags into a
/// dashboard [`Target`], mirroring `serve`'s endpoint selection.
fn parse_target(socket: Option<String>, tcp: Option<String>) -> Result<Target, CliError> {
    match (socket, tcp) {
        (Some(path), None) => Ok(Target::Unix(path.into())),
        (None, Some(addr)) => Ok(Target::Tcp(addr)),
        _ => Err(CliError::Input(
            "expected exactly one of --socket PATH or --tcp ADDR".into(),
        )),
    }
}

fn cmd_top(args: &[String]) -> Result<String, CliError> {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut interval_ms = 500u64;
    let mut frames = 0u64;
    let mut plain = false;
    let mut poll = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Input(format!("flag {flag} expects a value")))
        };
        match flag.as_str() {
            "--socket" => socket = Some(value()?),
            "--tcp" => tcp = Some(value()?),
            "--interval-ms" => {
                interval_ms = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--interval-ms: {e}")))?;
            }
            "--frames" => {
                frames = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--frames: {e}")))?;
            }
            "--plain" => plain = true,
            "--poll" => poll = true,
            other => return Err(CliError::Input(format!("unknown flag '{other}'"))),
        }
    }
    let config = TopConfig {
        interval_ms,
        frames,
        // ANSI clears would garble a pipe or a capture file; screen
        // control only makes sense on an actual terminal.
        plain: plain || !std::io::stdout().is_terminal(),
        poll,
        ..TopConfig::new(parse_target(socket, tcp)?)
    };
    let mut stdout = std::io::stdout().lock();
    let summary = mkss_top::run_top(&config, &mut stdout)?;
    drop(stdout);
    Ok(format!(
        "watched {} frames from {} ({} restarts)\n",
        summary.frames, summary.endpoint, summary.restarts
    ))
}

fn cmd_metrics(args: &[String]) -> Result<String, CliError> {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Input(format!("flag {flag} expects a value")))
        };
        match flag.as_str() {
            "--socket" => socket = Some(value()?),
            "--tcp" => tcp = Some(value()?),
            "--json" => json = true,
            other => return Err(CliError::Input(format!("unknown flag '{other}'"))),
        }
    }
    let mut client = match parse_target(socket, tcp)? {
        Target::Unix(path) => mkss_serve::Client::connect_unix(path)?,
        Target::Tcp(addr) => mkss_serve::Client::connect_tcp(&addr)?,
    };
    let line = client.request(r#"{"id":1,"op":"metrics"}"#)?;
    match mkss_top::parse_response_line(&line) {
        Ok(mkss_top::ResponseLine::Frame(sample)) => {
            if json {
                // The raw result document, one line — the scriptable form.
                let start = line.find("\"result\":").map(|i| i + "\"result\":".len());
                let body = start
                    .and_then(|s| line.get(s..line.len().saturating_sub(1)))
                    .unwrap_or(&line);
                Ok(format!("{body}\n"))
            } else {
                Ok(mkss_top::render_plain(&mkss_top::Frame::build(
                    None, &sample,
                )))
            }
        }
        Ok(mkss_top::ResponseLine::Error { message }) => {
            Err(CliError::Input(format!("daemon error: {message}")))
        }
        Ok(mkss_top::ResponseLine::WatchDone { .. }) => Err(CliError::Input(
            "unexpected watch_done response to a metrics request".into(),
        )),
        Err(e) => Err(CliError::Input(format!("bad metrics response: {e}"))),
    }
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let mut util = 0.5f64;
    let mut seed = 0u64;
    let mut tasks = (5usize, 10usize);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Input(format!("flag {flag} expects a value")))
        };
        match flag.as_str() {
            "--util" => {
                util = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--util: {e}")))?
            }
            "--seed" => {
                seed = value()?
                    .parse()
                    .map_err(|e| CliError::Input(format!("--seed: {e}")))?
            }
            "--tasks" => {
                let v = value()?;
                let (lo, hi) = v
                    .split_once("..")
                    .ok_or_else(|| CliError::Input("--tasks expects MIN..MAX".into()))?;
                tasks = (
                    lo.parse()
                        .map_err(|e| CliError::Input(format!("--tasks: {e}")))?,
                    hi.parse()
                        .map_err(|e| CliError::Input(format!("--tasks: {e}")))?,
                );
            }
            other => return Err(CliError::Input(format!("unknown flag '{other}'"))),
        }
    }
    if !(0.0..=1.0).contains(&util) || util == 0.0 {
        return Err(CliError::Input(format!(
            "--util must be in (0, 1], got {util}"
        )));
    }
    let config = WorkloadConfig {
        tasks_min: tasks.0,
        tasks_max: tasks.1,
        ..WorkloadConfig::paper()
    };
    let ts = Generator::new(config, seed)
        .schedulable_set(util)
        .ok_or_else(|| {
            CliError::Input(format!(
                "no schedulable set found at utilization {util} within the attempt cap"
            ))
        })?;
    Ok(TaskSetSpec::from_task_set(&ts).to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn sample_file() -> tempfile_path::TempPath {
        tempfile_path::write_temp(
            r#"{ "tasks": [
                { "period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4 },
                { "period_ms": 10, "wcet_ms": 3, "m": 1, "k": 2 }
            ] }"#,
        )
    }

    /// Minimal tempfile helper (no external dependency).
    mod tempfile_path {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempPath(pub PathBuf);
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        impl TempPath {
            pub fn as_str(&self) -> &str {
                self.0.to_str().unwrap()
            }
        }

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub fn write_temp(body: &str) -> TempPath {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("mkss-cli-test-{}-{n}.json", std::process::id()));
            std::fs::write(&path, body).unwrap();
            TempPath(path)
        }
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&args(&["--help"])).unwrap().contains("usage"));
        assert!(run(&args(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn policies_lists_all() {
        let out = run(&args(&["policies"])).unwrap();
        assert!(out.contains("selective"));
        assert!(out.contains("dp"));
        assert_eq!(out.lines().count(), PolicyKind::ALL.len());
    }

    #[test]
    fn analyze_sample() {
        let file = sample_file();
        let out = run(&args(&["analyze", file.as_str()])).unwrap();
        assert!(out.contains("schedulable under R-pattern: true"));
        assert!(out.contains("promotion Y = 1ms"));
    }

    #[test]
    fn simulate_selective_assures_mk() {
        let file = sample_file();
        let out = run(&args(&[
            "simulate",
            file.as_str(),
            "--policy",
            "selective",
            "--horizon-ms",
            "100",
            "--active-only",
            "--gantt",
        ]))
        .unwrap();
        assert!(out.contains("(m,k) assured: true"), "{out}");
        assert!(out.contains("primary:"), "gantt expected: {out}");
    }

    #[test]
    fn simulate_with_faults() {
        let file = sample_file();
        let out = run(&args(&[
            "simulate",
            file.as_str(),
            "--policy",
            "dp",
            "--horizon-ms",
            "60",
            "--permanent",
            "primary@7",
            "--transient",
            "0.001",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("copies lost"), "{out}");
        assert!(out.contains("(m,k) assured: true"), "{out}");
    }

    #[test]
    fn simulate_writes_vcd() {
        let file = sample_file();
        let vcd = std::env::temp_dir().join(format!("mkss-cli-test-{}.vcd", std::process::id()));
        let out = run(&args(&[
            "simulate",
            file.as_str(),
            "--horizon-ms",
            "40",
            "--vcd",
            vcd.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote VCD"));
        let body = std::fs::read_to_string(&vcd).unwrap();
        assert!(body.starts_with("$timescale"));
        let _ = std::fs::remove_file(vcd);
    }

    #[test]
    fn compare_runs_every_policy() {
        let file = sample_file();
        let out = run(&args(&["compare", file.as_str(), "--horizon-ms", "100"])).unwrap();
        for kind in PolicyKind::ALL {
            assert!(out.contains(kind.id()), "missing {kind:?} in:\n{out}");
        }
        assert!(out.contains("true"));
        assert!(!out.contains("false"), "some policy violated (m,k):\n{out}");
    }

    #[test]
    fn compare_writes_metrics_json() {
        let file = sample_file();
        let path =
            std::env::temp_dir().join(format!("mkss-cli-metrics-{}.json", std::process::id()));
        let out = run(&args(&[
            "compare",
            file.as_str(),
            "--horizon-ms",
            "100",
            "--metrics-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote metrics to"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"meta\"",
            "\"counters\"",
            "\"histograms\"",
            "\"stages\"",
            "backups_canceled",
            "backups_postponed",
            "optional_executed",
            "faults_injected",
            "simulate_ms",
        ] {
            assert!(body.contains(key), "missing {key} in:\n{body}");
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn compare_writes_a_chrome_trace_identically_across_jobs() {
        let file = sample_file();
        let mut traces = Vec::new();
        for jobs in ["1", "3"] {
            let path = std::env::temp_dir().join(format!(
                "mkss-cli-trace-jobs{jobs}-{}.json",
                std::process::id()
            ));
            let out = run(&args(&[
                "compare",
                file.as_str(),
                "--horizon-ms",
                "100",
                "--jobs",
                jobs,
                "--trace-out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("wrote trace to"), "{out}");
            traces.push(std::fs::read_to_string(&path).unwrap());
            let _ = std::fs::remove_file(path);
        }
        // One flight recorder per policy: the export is a pure function of
        // the per-policy streams, so worker count cannot change a byte.
        assert_eq!(traces[0], traces[1]);
        let body = &traces[0];
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");
        for kind in PolicyKind::ALL {
            assert!(body.contains(kind.id()), "missing {kind:?} track");
        }
        for needle in [
            "\"ph\":\"M\"",
            "\"ph\":\"i\"",
            "\"ph\":\"b\"",
            "\"ph\":\"e\"",
        ] {
            assert!(body.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn compare_metrics_counters_are_jobs_invariant() {
        let file = sample_file();
        let mut documents = Vec::new();
        for jobs in ["1", "3"] {
            let path = std::env::temp_dir().join(format!(
                "mkss-cli-metrics-jobs{jobs}-{}.json",
                std::process::id()
            ));
            run(&args(&[
                "compare",
                file.as_str(),
                "--horizon-ms",
                "100",
                "--jobs",
                jobs,
                "--metrics-out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            let body = std::fs::read_to_string(&path).unwrap();
            // The document's keys are emitted in a fixed order, so the
            // slice from "counters" up to "stages" captures exactly the
            // counters and histograms sections.
            let start = body.find("\"counters\"").unwrap();
            let end = body.find("\"stages\"").unwrap();
            documents.push(body[start..end].to_string());
            let _ = std::fs::remove_file(path);
        }
        // Counters commute across workers, so only timing (and the jobs
        // meta entry) may differ between worker counts.
        assert_eq!(documents[0], documents[1]);
    }

    #[test]
    fn top_streams_and_metrics_pretty_prints() {
        let sock =
            std::env::temp_dir().join(format!("mkss-cli-top-test-{}.sock", std::process::id()));
        let server =
            mkss_serve::Server::bind_unix(&sock, mkss_serve::ServerConfig::default()).unwrap();
        let sock_arg = sock.to_str().unwrap();

        let out = run(&args(&[
            "top",
            "--socket",
            sock_arg,
            "--interval-ms",
            "10",
            "--frames",
            "2",
            "--plain",
        ]))
        .unwrap();
        assert_eq!(out, "watched 2 frames from daemon (0 restarts)\n");

        let pretty = run(&args(&["metrics", "--socket", sock_arg])).unwrap();
        assert!(
            pretty.contains("mkss-top · mkss-serve @ daemon"),
            "{pretty}"
        );
        assert!(pretty.contains("serve_watches"), "{pretty}");
        assert!(!pretty.contains('\x1b'), "metrics output is plain");

        let json = run(&args(&["metrics", "--socket", sock_arg, "--json"])).unwrap();
        assert!(json.starts_with("{\"meta\":"), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
        assert!(json.contains("\"counters\""), "{json}");

        server.shutdown();
        let _ = std::fs::remove_file(&sock);
    }

    #[test]
    fn top_and_metrics_flag_errors() {
        assert!(run(&args(&["top"])).is_err(), "endpoint is required");
        assert!(run(&args(&["metrics"])).is_err(), "endpoint is required");
        assert!(run(&args(&["top", "--socket", "/tmp/x", "--tcp", "y"])).is_err());
        assert!(run(&args(&["top", "--socket", "/tmp/x", "--frames", "no"])).is_err());
        assert!(run(&args(&["metrics", "--socket", "/no/such/daemon.sock"])).is_err());
    }

    #[test]
    fn generate_roundtrips() {
        let out = run(&args(&["generate", "--util", "0.4", "--seed", "11"])).unwrap();
        let ts = TaskSetSpec::parse(&out).unwrap().to_task_set().unwrap();
        assert!((ts.mk_utilization() - 0.4).abs() < 0.01);
    }

    #[test]
    fn flag_errors_are_reported() {
        let file = sample_file();
        assert!(run(&args(&["simulate", file.as_str(), "--policy", "nope"])).is_err());
        assert!(run(&args(&["simulate", file.as_str(), "--permanent", "weird"])).is_err());
        assert!(run(&args(&["generate", "--util", "0"])).is_err());
        assert!(run(&args(&["analyze", "/no/such/file.json"])).is_err());
    }
}
