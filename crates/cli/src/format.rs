//! Human-friendly JSON task-set format for the CLI.
//!
//! ```json
//! {
//!   "tasks": [
//!     { "period_ms": 5,  "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4 },
//!     { "period_ms": 10,                   "wcet_ms": 3, "m": 1, "k": 2 }
//!   ]
//! }
//! ```
//!
//! Times are (possibly fractional) milliseconds with microsecond
//! resolution; `deadline_ms` defaults to the period. Task order is
//! priority order (first = highest), matching the paper's convention.

use mkss_core::task::{Task, TaskSet};
use mkss_core::time::{Time, TICKS_PER_MS};
use serde::{Deserialize, Serialize};

use crate::CliError;

/// One task entry of the JSON format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Period in milliseconds.
    pub period_ms: f64,
    /// Relative deadline in milliseconds (defaults to the period).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<f64>,
    /// Worst-case execution time in milliseconds.
    pub wcet_ms: f64,
    /// Minimum completions per window.
    pub m: u32,
    /// Window length.
    pub k: u32,
}

/// The JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSetSpec {
    /// Tasks in priority order.
    pub tasks: Vec<TaskSpec>,
}

fn ms_to_time(ms: f64, what: &str) -> Result<Time, CliError> {
    if !ms.is_finite() || ms < 0.0 {
        return Err(CliError::Input(format!(
            "{what} must be a finite non-negative number, got {ms}"
        )));
    }
    Ok(Time::from_ticks((ms * TICKS_PER_MS as f64).round() as u64))
}

impl TaskSetSpec {
    /// Converts the document into a validated [`TaskSet`].
    ///
    /// # Errors
    ///
    /// Propagates the task-model validation errors with the offending
    /// task index.
    pub fn to_task_set(&self) -> Result<TaskSet, CliError> {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for (i, spec) in self.tasks.iter().enumerate() {
            let period = ms_to_time(spec.period_ms, "period_ms")?;
            let deadline = match spec.deadline_ms {
                Some(d) => ms_to_time(d, "deadline_ms")?,
                None => period,
            };
            let wcet = ms_to_time(spec.wcet_ms, "wcet_ms")?;
            let task = Task::new(period, deadline, wcet, spec.m, spec.k)
                .map_err(|e| CliError::Input(format!("task {}: {e}", i + 1)))?;
            tasks.push(task);
        }
        TaskSet::new(tasks).map_err(|e| CliError::Input(e.to_string()))
    }

    /// Builds the document from a task set.
    pub fn from_task_set(ts: &TaskSet) -> Self {
        TaskSetSpec {
            tasks: ts
                .iter()
                .map(|(_, t)| TaskSpec {
                    period_ms: t.period().as_ms_f64(),
                    deadline_ms: (t.deadline() != t.period()).then(|| t.deadline().as_ms_f64()),
                    wcet_ms: t.wcet().as_ms_f64(),
                    m: t.mk().m(),
                    k: t.mk().k(),
                })
                .collect(),
        }
    }

    /// Parses the JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Input`] on malformed JSON.
    pub fn parse(json: &str) -> Result<Self, CliError> {
        serde_json::from_str(json)
            .map_err(|e| CliError::Input(format!("invalid task set JSON: {e}")))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "tasks": [
            { "period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4 },
            { "period_ms": 10, "wcet_ms": 3, "m": 1, "k": 2 }
        ]
    }"#;

    #[test]
    fn parse_and_convert() {
        let spec = TaskSetSpec::parse(SAMPLE).unwrap();
        let ts = spec.to_task_set().unwrap();
        assert_eq!(ts.len(), 2);
        let t1 = ts.task(mkss_core::task::TaskId(0));
        assert_eq!(t1.deadline(), Time::from_ms(4));
        let t2 = ts.task(mkss_core::task::TaskId(1));
        assert_eq!(
            t2.deadline(),
            Time::from_ms(10),
            "deadline defaults to period"
        );
    }

    #[test]
    fn fractional_milliseconds() {
        let spec = TaskSetSpec::parse(
            r#"{ "tasks": [ { "period_ms": 5, "deadline_ms": 2.5, "wcet_ms": 2, "m": 2, "k": 4 } ] }"#,
        )
        .unwrap();
        let ts = spec.to_task_set().unwrap();
        assert_eq!(
            ts.task(mkss_core::task::TaskId(0)).deadline(),
            Time::from_us(2_500)
        );
    }

    #[test]
    fn roundtrip() {
        let spec = TaskSetSpec::parse(SAMPLE).unwrap();
        let ts = spec.to_task_set().unwrap();
        let back = TaskSetSpec::from_task_set(&ts);
        let ts2 = back.to_task_set().unwrap();
        assert_eq!(ts, ts2);
    }

    #[test]
    fn invalid_inputs_are_reported() {
        assert!(TaskSetSpec::parse("{").is_err());
        let bad_mk = r#"{ "tasks": [ { "period_ms": 5, "wcet_ms": 3, "m": 4, "k": 4 } ] }"#;
        let err = TaskSetSpec::parse(bad_mk)
            .unwrap()
            .to_task_set()
            .unwrap_err();
        assert!(err.to_string().contains("task 1"));
        let neg = r#"{ "tasks": [ { "period_ms": -5, "wcet_ms": 3, "m": 1, "k": 4 } ] }"#;
        assert!(TaskSetSpec::parse(neg).unwrap().to_task_set().is_err());
        let empty = r#"{ "tasks": [] }"#;
        assert!(TaskSetSpec::parse(empty).unwrap().to_task_set().is_err());
    }
}
