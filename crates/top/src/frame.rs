//! The frame model: everything one dashboard refresh displays, computed
//! **deterministically** from a pair of metrics samples.
//!
//! No wall clock enters here — rates divide counter deltas by the
//! difference of the *daemon's* `uptime_ms` readings, so the same two
//! samples always produce the same [`Frame`], which is what makes the
//! golden-frame render tests possible.

use mkss_obs::{CounterId, HistogramId, MetricsSnapshot, Percentile, Registry};

/// Daemon identity and pool gauges carried in a sample's `meta` block.
///
/// Fields absent on the wire parse as zero / empty, so newer dashboards
/// tolerate older daemons.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampleMeta {
    /// Producing binary (`mkss-serve` for daemon docs).
    pub binary: String,
    /// Endpoint tag (`daemon` today).
    pub endpoint: String,
    /// Monotonic publication sequence number.
    pub seq: u64,
    /// Milliseconds since the daemon started — the dashboard's clock.
    pub uptime_ms: u64,
    /// Worker-pool thread count.
    pub workers: u64,
    /// Workers running a job when the sample was taken.
    pub busy_workers: u64,
    /// Bounded job-queue capacity.
    pub queue: u64,
    /// Jobs queued when the sample was taken.
    pub queue_depth: u64,
}

/// One metrics observation: a cumulative snapshot plus its meta block.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Cumulative counter/histogram totals at this instant.
    pub snapshot: MetricsSnapshot,
    /// Who produced it and when (in daemon time).
    pub meta: SampleMeta,
}

impl Sample {
    /// Snapshot a live in-process registry — the attach point for
    /// watching a sweep or bench run without a daemon. The caller
    /// supplies `uptime_ms` (e.g. a harness stopwatch) and a sequence
    /// number; pool gauges stay zero.
    pub fn from_registry(registry: &Registry, uptime_ms: u64, seq: u64) -> Sample {
        Sample {
            snapshot: registry.snapshot(),
            meta: SampleMeta {
                binary: "in-process".to_string(),
                endpoint: "registry".to_string(),
                seq,
                uptime_ms,
                ..SampleMeta::default()
            },
        }
    }
}

/// Character cells in a full histogram bar.
pub const BAR_WIDTH: usize = 24;

/// One counter line: cumulative total plus, when a baseline exists, the
/// delta since it and the per-second rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRow {
    /// Stable catalog name.
    pub name: &'static str,
    /// Cumulative total.
    pub total: u64,
    /// Change since the previous sample (`None` without a baseline).
    pub delta: Option<u64>,
    /// Events per second over the sampled span (`None` without a
    /// baseline or when no daemon time elapsed between samples).
    pub rate: Option<f64>,
}

/// One histogram bucket: label, counts, and a pre-scaled bar length.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketRow {
    /// `<=N` for bounded buckets, `over` for the overflow cell.
    pub label: String,
    /// Cumulative count.
    pub count: u64,
    /// Change since the previous sample (`None` without a baseline).
    pub delta: Option<u64>,
    /// Bar cells (`0..=BAR_WIDTH`), scaled to the histogram's fullest
    /// bucket; non-empty buckets always get at least one cell.
    pub bar: usize,
}

/// One histogram block: totals plus its bucket rows.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramBlock {
    /// Stable catalog name.
    pub name: &'static str,
    /// Cumulative observation count across buckets.
    pub total: u64,
    /// Observations since the previous sample (`None` without baseline).
    pub delta: Option<u64>,
    /// p50/p90/p99 estimates read off the fixed buckets, in that order;
    /// empty for a histogram with no observations.
    pub percentiles: Vec<(u64, Percentile)>,
    /// Bucket rows in bound order, overflow last.
    pub buckets: Vec<BucketRow>,
}

/// One per-op throughput entry for the ops summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRate {
    /// Display name (`simulate`, `compare`, `sweep`, `requests`).
    pub name: &'static str,
    /// Cumulative total of the backing counter.
    pub total: u64,
    /// Completions per second (`None` without a baseline).
    pub rate: Option<f64>,
}

/// Everything one refresh displays, in display order.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Identity/gauges of the newer sample.
    pub meta: SampleMeta,
    /// Daemon milliseconds between the two samples (`None` without a
    /// baseline).
    pub elapsed_ms: Option<u64>,
    /// The newer sample could not have evolved from the baseline (the
    /// daemon restarted or the poller reconnected elsewhere); deltas and
    /// rates are suppressed for this frame.
    pub restarted: bool,
    /// Per-op throughput entries.
    pub ops: Vec<OpRate>,
    /// Every catalog counter in export order.
    pub counters: Vec<CounterRow>,
    /// Every catalog histogram in export order.
    pub histograms: Vec<HistogramBlock>,
}

impl Frame {
    /// Build a frame from the newest sample and, when available, the one
    /// before it.
    ///
    /// Restart awareness: when the newer sample's `uptime_ms` went
    /// backwards or any cell shrank (`is_progression_of` fails), the
    /// baseline is discarded — the frame shows totals only and is
    /// flagged [`Frame::restarted`] instead of rendering nonsense
    /// negative rates.
    pub fn build(prev: Option<&Sample>, now: &Sample) -> Frame {
        let restarted = prev.is_some_and(|p| {
            now.meta.uptime_ms < p.meta.uptime_ms || !now.snapshot.is_progression_of(&p.snapshot)
        });
        let base = if restarted { None } else { prev };
        let elapsed_ms = base.map(|p| now.meta.uptime_ms.saturating_sub(p.meta.uptime_ms));
        let delta = base.map(|p| now.snapshot.delta(&p.snapshot));
        let rate_of = |d: u64| -> Option<f64> {
            match elapsed_ms {
                Some(ms) if ms > 0 => Some(d as f64 * 1000.0 / ms as f64),
                _ => None,
            }
        };

        let counters = CounterId::ALL
            .iter()
            .map(|&c| {
                let d = delta.as_ref().map(|s| s.counter(c));
                CounterRow {
                    name: c.name(),
                    total: now.snapshot.counter(c),
                    delta: d,
                    rate: d.and_then(&rate_of),
                }
            })
            .collect();

        let ops = [
            ("simulate", CounterId::ServeOpSimulate),
            ("compare", CounterId::ServeOpCompare),
            ("sweep", CounterId::ServeOpSweep),
            ("requests", CounterId::ServeRequests),
        ]
        .iter()
        .map(|&(name, c)| OpRate {
            name,
            total: now.snapshot.counter(c),
            rate: delta.as_ref().map(|s| s.counter(c)).and_then(&rate_of),
        })
        .collect();

        let histograms = HistogramId::ALL
            .iter()
            .map(|&h| {
                let counts = now.snapshot.histogram(h);
                let deltas = delta.as_ref().map(|s| s.histogram(h).to_vec());
                let max = counts.iter().copied().max().unwrap_or(0);
                let buckets = counts
                    .iter()
                    .enumerate()
                    .map(|(i, &count)| BucketRow {
                        label: match h.bounds().get(i) {
                            Some(bound) => format!("<={bound}"),
                            None => "over".to_string(),
                        },
                        count,
                        delta: deltas.as_ref().map(|d| d[i]),
                        bar: bar_cells(count, max),
                    })
                    .collect();
                HistogramBlock {
                    name: h.name(),
                    total: counts.iter().sum(),
                    delta: deltas.as_ref().map(|d| d.iter().sum()),
                    percentiles: [50, 90, 99]
                        .iter()
                        .filter_map(|&q| h.percentile(counts, q).map(|p| (q, p)))
                        .collect(),
                    buckets,
                }
            })
            .collect();

        Frame {
            meta: now.meta.clone(),
            elapsed_ms,
            restarted,
            ops,
            counters,
            histograms,
        }
    }
}

/// Integer bar scaling: proportional to the fullest bucket, with any
/// non-empty bucket guaranteed at least one cell.
fn bar_cells(count: u64, max: u64) -> usize {
    if count == 0 || max == 0 {
        return 0;
    }
    (((count as u128 * BAR_WIDTH as u128) / max as u128) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_obs::Recorder;
    use std::sync::Arc;

    fn sample(met: u64, uptime_ms: u64, seq: u64) -> Sample {
        let registry = Arc::new(Registry::new(1));
        let h = registry.handle_at(0);
        h.incr(CounterId::JobsMet, met);
        h.incr(CounterId::ServeOpSimulate, met / 2);
        for d in 0..met.min(10) {
            h.observe(HistogramId::MkDistance, d);
        }
        let mut s = Sample::from_registry(&registry, uptime_ms, seq);
        s.meta.workers = 4;
        s.meta.busy_workers = 1;
        s.meta.queue = 64;
        s
    }

    #[test]
    fn first_frame_has_totals_but_no_deltas() {
        let frame = Frame::build(None, &sample(6, 1000, 0));
        assert!(!frame.restarted);
        assert_eq!(frame.elapsed_ms, None);
        let met = frame
            .counters
            .iter()
            .find(|c| c.name == "jobs_met")
            .expect("row");
        assert_eq!((met.total, met.delta, met.rate), (6, None, None));
    }

    #[test]
    fn rates_divide_deltas_by_daemon_time() {
        let prev = sample(6, 1000, 0);
        let now = sample(10, 3000, 1);
        let frame = Frame::build(Some(&prev), &now);
        assert_eq!(frame.elapsed_ms, Some(2000));
        let met = frame
            .counters
            .iter()
            .find(|c| c.name == "jobs_met")
            .expect("row");
        assert_eq!(met.delta, Some(4));
        assert_eq!(met.rate, Some(2.0)); // 4 events over 2 s
        let ops = frame.ops.iter().find(|o| o.name == "simulate").expect("op");
        assert_eq!(ops.total, 5);
        assert_eq!(ops.rate, Some(1.0)); // (5-3)/2s
    }

    #[test]
    fn restart_discards_the_baseline() {
        let prev = sample(10, 5000, 7);
        // Fewer events and a smaller uptime: a fresh daemon.
        let now = sample(2, 100, 0);
        let frame = Frame::build(Some(&prev), &now);
        assert!(frame.restarted);
        assert_eq!(frame.elapsed_ms, None);
        assert!(frame.counters.iter().all(|c| c.delta.is_none()));
    }

    #[test]
    fn zero_elapsed_suppresses_rates_but_keeps_deltas() {
        let prev = sample(6, 1000, 0);
        let now = sample(10, 1000, 1);
        let frame = Frame::build(Some(&prev), &now);
        let met = frame
            .counters
            .iter()
            .find(|c| c.name == "jobs_met")
            .expect("row");
        assert_eq!(met.delta, Some(4));
        assert_eq!(met.rate, None);
    }

    #[test]
    fn bars_scale_to_the_fullest_bucket() {
        assert_eq!(bar_cells(0, 100), 0);
        assert_eq!(bar_cells(100, 100), BAR_WIDTH);
        assert_eq!(bar_cells(50, 100), BAR_WIDTH / 2);
        assert_eq!(bar_cells(1, 1_000_000), 1, "non-empty floors at one cell");
        assert_eq!(bar_cells(5, 0), 0, "all-zero histogram has no bars");
    }

    #[test]
    fn frames_are_deterministic_from_the_sample_pair() {
        let prev = sample(6, 1000, 0);
        let now = sample(10, 3000, 1);
        assert_eq!(
            Frame::build(Some(&prev), &now),
            Frame::build(Some(&prev), &now)
        );
    }
}
