//! Frame renderers: plain text (goldens, pipes, `--plain`) and ANSI (a
//! live terminal). Both are pure functions of a [`Frame`] — every byte,
//! including bar lengths and rate digits, is determined by the frame,
//! so renders are testable against golden strings.

use crate::frame::{BucketRow, CounterRow, Frame, HistogramBlock};

/// ANSI escape prelude for a live refresh: clear screen, cursor home.
pub const ANSI_CLEAR: &str = "\x1b[2J\x1b[H";

const BOLD: &str = "\x1b[1m";
const DIM: &str = "\x1b[2m";
const CYAN: &str = "\x1b[36m";
const GREEN: &str = "\x1b[32m";
const YELLOW: &str = "\x1b[33m";
const RED: &str = "\x1b[31m";
const RESET: &str = "\x1b[0m";

/// Render the frame as plain text, one section per metrics family.
pub fn render_plain(frame: &Frame) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&header_line(frame));
    out.push('\n');
    out.push_str(&pool_line(frame));
    out.push('\n');
    out.push_str(&ops_line(frame));
    out.push('\n');
    out.push_str("counters:\n");
    for row in &frame.counters {
        out.push_str(&counter_line(row));
        out.push('\n');
    }
    out.push_str("histograms:\n");
    for block in &frame.histograms {
        out.push_str(&format!(
            "  {} (n={}{})\n",
            block.name,
            block.total,
            match block.delta {
                Some(d) => format!(", +{d}"),
                None => String::new(),
            }
        ));
        if let Some(line) = percentile_line(block) {
            out.push_str(&line);
            out.push('\n');
        }
        for bucket in &block.buckets {
            out.push_str(&bucket_line(bucket, ""));
            out.push('\n');
        }
    }
    out
}

/// Render the frame for a live ANSI terminal: clear + home, bold header,
/// colored gauges and bars. Same data, same layout, same widths as
/// [`render_plain`] — only escape sequences differ.
pub fn render_ansi(frame: &Frame) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(ANSI_CLEAR);
    out.push_str(BOLD);
    out.push_str(&header_line(frame));
    out.push_str(RESET);
    out.push('\n');
    out.push_str(&pool_line_colored(frame));
    out.push('\n');
    out.push_str(CYAN);
    out.push_str(&ops_line(frame));
    out.push_str(RESET);
    out.push('\n');
    out.push_str(BOLD);
    out.push_str("counters:");
    out.push_str(RESET);
    out.push('\n');
    for row in &frame.counters {
        if row.delta == Some(0) {
            // Quiet rows dim out so active ones pop.
            out.push_str(DIM);
            out.push_str(&counter_line(row));
            out.push_str(RESET);
        } else {
            out.push_str(&counter_line(row));
        }
        out.push('\n');
    }
    out.push_str(BOLD);
    out.push_str("histograms:");
    out.push_str(RESET);
    out.push('\n');
    for block in &frame.histograms {
        out.push_str(CYAN);
        out.push_str(&format!(
            "  {} (n={}{})",
            block.name,
            block.total,
            match block.delta {
                Some(d) => format!(", +{d}"),
                None => String::new(),
            }
        ));
        out.push_str(RESET);
        out.push('\n');
        if let Some(line) = percentile_line(block) {
            out.push_str(DIM);
            out.push_str(&line);
            out.push_str(RESET);
            out.push('\n');
        }
        for bucket in &block.buckets {
            out.push_str(&bucket_line(bucket, GREEN));
            out.push('\n');
        }
    }
    out
}

fn header_line(frame: &Frame) -> String {
    let mut line = format!(
        "mkss-top · {} @ {} · seq {} · uptime {} ms",
        frame.meta.binary, frame.meta.endpoint, frame.meta.seq, frame.meta.uptime_ms
    );
    if let Some(ms) = frame.elapsed_ms {
        line.push_str(&format!(" · span {ms} ms"));
    }
    if frame.restarted {
        line.push_str(" · RESTARTED (baseline reset)");
    }
    line
}

fn pool_line(frame: &Frame) -> String {
    format!(
        "pool: {}/{} workers busy · queue {}/{}",
        frame.meta.busy_workers, frame.meta.workers, frame.meta.queue_depth, frame.meta.queue
    )
}

fn pool_line_colored(frame: &Frame) -> String {
    let busy_color = if frame.meta.busy_workers == 0 {
        GREEN
    } else if frame.meta.busy_workers < frame.meta.workers {
        YELLOW
    } else {
        RED
    };
    let queue_color = if frame.meta.queue_depth == 0 {
        GREEN
    } else if frame.meta.queue_depth * 2 < frame.meta.queue {
        YELLOW
    } else {
        RED
    };
    format!(
        "pool: {busy_color}{}/{} workers busy{RESET} · queue {queue_color}{}/{}{RESET}",
        frame.meta.busy_workers, frame.meta.workers, frame.meta.queue_depth, frame.meta.queue
    )
}

fn ops_line(frame: &Frame) -> String {
    let mut line = String::from("ops/s:");
    for (i, op) in frame.ops.iter().enumerate() {
        if i > 0 {
            line.push_str(" ·");
        }
        line.push_str(&format!(" {} {}", op.name, fmt_rate(op.rate)));
    }
    line
}

/// The `p50/p90/p99` summary line of one histogram block — shared by
/// both renderers (and, through `render_plain`, by `mkss-cli metrics`).
/// `None` when the histogram has no observations.
fn percentile_line(block: &HistogramBlock) -> Option<String> {
    if block.percentiles.is_empty() {
        return None;
    }
    let mut line = String::from("   ");
    for (q, p) in &block.percentiles {
        line.push_str(&format!(" p{q} {p}"));
    }
    Some(line)
}

fn counter_line(row: &CounterRow) -> String {
    format!(
        "  {:<24} {:>12} {:>10} {:>10}",
        row.name,
        row.total,
        fmt_delta(row.delta),
        fmt_rate_suffixed(row.rate)
    )
}

fn bucket_line(bucket: &BucketRow, bar_color: &str) -> String {
    let mut line = format!(
        "    {:<7} {:>10} {:>8}",
        bucket.label,
        bucket.count,
        fmt_delta(bucket.delta)
    );
    // Empty bars leave no trailing whitespace (and no stray escapes).
    if bucket.bar > 0 {
        let bar = "#".repeat(bucket.bar);
        line.push_str("  ");
        if bar_color.is_empty() {
            line.push_str(&bar);
        } else {
            line.push_str(bar_color);
            line.push_str(&bar);
            line.push_str(RESET);
        }
    }
    line
}

fn fmt_delta(delta: Option<u64>) -> String {
    match delta {
        Some(d) => format!("+{d}"),
        None => "-".to_string(),
    }
}

fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{r:.1}"),
        None => "-".to_string(),
    }
}

fn fmt_rate_suffixed(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{r:.1}/s"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Sample;
    use mkss_obs::{CounterId, HistogramId, MetricsSnapshot};

    fn sample() -> Sample {
        let mut snapshot = MetricsSnapshot::empty();
        snapshot.set_counter(CounterId::JobsMet, 40);
        snapshot.set_histogram(HistogramId::MkDistance, [4, 2, 0, 0, 0, 0, 0, 1]);
        let mut s = Sample {
            snapshot,
            meta: Default::default(),
        };
        s.meta.binary = "mkss-serve".to_string();
        s.meta.endpoint = "daemon".to_string();
        s.meta.uptime_ms = 2000;
        s
    }

    #[test]
    fn plain_render_has_all_sections_and_no_escapes() {
        let text = render_plain(&Frame::build(None, &sample()));
        assert!(text.contains("mkss-top · mkss-serve @ daemon"), "{text}");
        assert!(text.contains("counters:"), "{text}");
        assert!(text.contains("histograms:"), "{text}");
        assert!(text.contains("jobs_met"), "{text}");
        assert!(!text.contains('\x1b'), "plain render leaked ANSI escapes");
    }

    #[test]
    fn plain_render_summarizes_percentiles() {
        let text = render_plain(&Frame::build(None, &sample()));
        // MkDistance fixture: [4,2,0,0,0,0,0,1] over bounds [0,1,2,3,4,6,8]
        // → n=7, p50 at rank 4 (<=0), p90 at rank 7 (overflow, >8).
        assert!(text.contains("p50 <=0"), "{text}");
        assert!(text.contains("p90 >8"), "{text}");
        assert!(text.contains("p99 >8"), "{text}");
        // Histograms with no observations carry no percentile line.
        assert!(!text.contains("p50 -"), "{text}");
    }

    #[test]
    fn ansi_render_clears_and_colors_but_matches_plain_data() {
        let frame = Frame::build(None, &sample());
        let ansi = render_ansi(&frame);
        assert!(ansi.starts_with(ANSI_CLEAR), "missing clear/home prefix");
        // Stripped of escape sequences, the ANSI render is the plain one.
        let stripped = strip_ansi(&ansi);
        assert_eq!(stripped, render_plain(&frame));
    }

    fn strip_ansi(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c == '\x1b' {
                for e in chars.by_ref() {
                    if e == 'm' || e == 'H' || e == 'J' {
                        break;
                    }
                }
            } else {
                out.push(c);
            }
        }
        out
    }
}
