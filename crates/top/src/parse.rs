//! Wire-side parsing: daemon response lines (the `metrics` op, `watch`
//! frames) into [`Sample`]s, using the serve crate's hand-rolled JSON
//! parser.
//!
//! Forward compatibility is deliberate: counters or histograms the
//! daemon doesn't know yet parse as zero, and unknown members are
//! ignored — a newer dashboard can watch an older daemon.

use std::fmt;

use mkss_obs::{CounterId, HistogramId, MetricsSnapshot};
use mkss_serve::json::{self, JsonValue};

use crate::frame::{Sample, SampleMeta};

/// A response line the dashboard could not interpret.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ParseError {
    /// What went wrong, for the operator.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

/// One interpreted daemon response line.
#[derive(Debug, Clone, PartialEq)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: mirrors the serve protocol's fixed response kinds; the dashboard matches them all
pub enum ResponseLine {
    /// A metrics document (a `watch` frame or a `metrics` op response).
    Frame(Box<Sample>),
    /// The `watch` subscription's terminal marker.
    WatchDone {
        /// Frames the daemon pushed before ending the stream.
        frames: u64,
    },
    /// A protocol-level error response.
    Error {
        /// The daemon's error message.
        message: String,
    },
}

/// Interpret one daemon response line.
///
/// # Errors
///
/// Fails when the line is not JSON or is an `ok` response whose result
/// is neither a metrics document nor a `watch_done` marker.
pub fn parse_response_line(line: &str) -> Result<ResponseLine, ParseError> {
    let doc = json::parse(line).map_err(|e| ParseError::new(format!("bad response: {e}")))?;
    if doc.get("ok").and_then(JsonValue::as_bool) == Some(false) {
        let message = doc
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("unspecified daemon error")
            .to_string();
        return Ok(ResponseLine::Error { message });
    }
    let result = doc
        .get("result")
        .ok_or_else(|| ParseError::new("response has no 'result'"))?;
    if result.get("watch_done").and_then(JsonValue::as_bool) == Some(true) {
        let frames = result
            .get("frames")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        return Ok(ResponseLine::WatchDone { frames });
    }
    Ok(ResponseLine::Frame(Box::new(sample_from_doc(result)?)))
}

/// Reconstruct a [`Sample`] from a parsed metrics document (the object
/// with `meta` / `counters` / `histograms` members).
///
/// # Errors
///
/// Fails when the `counters` member is missing — everything else
/// degrades to zero.
pub fn sample_from_doc(doc: &JsonValue) -> Result<Sample, ParseError> {
    let counters = doc
        .get("counters")
        .ok_or_else(|| ParseError::new("document has no 'counters'"))?;
    let mut snapshot = MetricsSnapshot::empty();
    for c in CounterId::ALL {
        let value = counters
            .get(c.name())
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        snapshot.set_counter(c, value);
    }
    if let Some(histograms) = doc.get("histograms") {
        for h in HistogramId::ALL {
            let mut buckets = [0u64; HistogramId::BUCKETS];
            if let Some(counts) = histograms
                .get(h.name())
                .and_then(|entry| entry.get("counts"))
                .and_then(JsonValue::as_array)
            {
                for (cell, value) in buckets.iter_mut().zip(counts.iter()) {
                    *cell = value.as_u64().unwrap_or(0);
                }
            }
            snapshot.set_histogram(h, buckets);
        }
    }
    let meta = doc.get("meta");
    let meta_str = |key: &str| -> String {
        meta.and_then(|m| m.get(key))
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string()
    };
    let meta_u64 = |key: &str| -> u64 {
        meta.and_then(|m| m.get(key))
            .and_then(JsonValue::as_str)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };
    Ok(Sample {
        snapshot,
        meta: SampleMeta {
            binary: meta_str("binary"),
            endpoint: meta_str("endpoint"),
            seq: meta_u64("seq"),
            uptime_ms: meta_u64("uptime_ms"),
            workers: meta_u64("workers"),
            busy_workers: meta_u64("busy_workers"),
            queue: meta_u64("queue"),
            queue_depth: meta_u64("queue_depth"),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_obs::{metrics_doc, Recorder, Registry};
    use std::sync::Arc;

    /// Round trip: a doc produced by the real exporter parses back into
    /// the exact snapshot it wrapped.
    #[test]
    fn exporter_docs_round_trip() {
        let registry = Arc::new(Registry::new(2));
        let h = registry.handle_at(0);
        h.incr(CounterId::JobsMet, 17);
        h.incr(CounterId::ServeRequests, 4);
        h.observe(HistogramId::ServeQueueDepth, 3);
        let snapshot = registry.snapshot();
        let doc = metrics_doc(
            "mkss-serve",
            snapshot.clone(),
            &[
                ("endpoint", "daemon".to_string()),
                ("seq", "9".to_string()),
                ("uptime_ms", "1234".to_string()),
                ("workers", "8".to_string()),
                ("busy_workers", "2".to_string()),
                ("queue", "64".to_string()),
                ("queue_depth", "1".to_string()),
            ],
            &[],
        );
        let line = format!("{{\"id\":1,\"ok\":true,\"result\":{}}}", doc.to_json_line());
        let ResponseLine::Frame(sample) = parse_response_line(&line).expect("parses") else {
            panic!("expected a frame");
        };
        assert_eq!(sample.snapshot, snapshot);
        assert_eq!(sample.meta.binary, "mkss-serve");
        assert_eq!(sample.meta.seq, 9);
        assert_eq!(sample.meta.uptime_ms, 1234);
        assert_eq!(sample.meta.workers, 8);
        assert_eq!(sample.meta.busy_workers, 2);
        assert_eq!((sample.meta.queue, sample.meta.queue_depth), (64, 1));
    }

    #[test]
    fn watch_done_and_errors_are_recognized() {
        assert_eq!(
            parse_response_line(r#"{"id":5,"ok":true,"result":{"watch_done":true,"frames":3}}"#)
                .expect("parses"),
            ResponseLine::WatchDone { frames: 3 }
        );
        assert_eq!(
            parse_response_line(r#"{"id":5,"ok":false,"error":"overloaded"}"#).expect("parses"),
            ResponseLine::Error {
                message: "overloaded".to_string()
            }
        );
        assert!(parse_response_line("not json").is_err());
        assert!(parse_response_line(r#"{"id":5,"ok":true,"result":{"pong":true}}"#).is_err());
    }

    #[test]
    fn missing_members_degrade_to_zero() {
        let line = r#"{"id":1,"ok":true,"result":{"meta":{},"counters":{"jobs_met":3}}}"#;
        let ResponseLine::Frame(sample) = parse_response_line(line).expect("parses") else {
            panic!("expected a frame");
        };
        assert_eq!(sample.snapshot.counter(CounterId::JobsMet), 3);
        assert_eq!(sample.snapshot.counter(CounterId::JobsReleased), 0);
        assert_eq!(sample.meta.seq, 0);
        assert_eq!(sample.meta.binary, "");
    }
}
