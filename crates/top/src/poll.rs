//! The dashboard loop: attach to a daemon, pull metrics documents —
//! streamed by the `watch` op or polled with repeated `metrics`
//! requests — and render one frame per sample against the previous one.

use std::io::{self, Write};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use mkss_serve::protocol::{MAX_WATCH_INTERVAL_MS, MIN_WATCH_INTERVAL_MS};
use mkss_serve::Client;

use crate::frame::{Frame, Sample};
use crate::parse::{parse_response_line, ResponseLine};
use crate::render::{render_ansi, render_plain};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: unix/tcp is the complete endpoint alphabet of the daemon
pub enum Target {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP endpoint, e.g. `"127.0.0.1:7878"`.
    Tcp(String),
}

/// Dashboard session configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopConfig {
    /// Daemon endpoint to attach to.
    pub target: Target,
    /// Milliseconds between samples.
    pub interval_ms: u64,
    /// Frames to render before exiting; `0` runs until the daemon
    /// drains the stream (watch mode) or the connection drops.
    pub frames: u64,
    /// Render plain text (no ANSI escapes, no screen clearing).
    pub plain: bool,
    /// Poll the `metrics` op repeatedly instead of subscribing with
    /// `watch` — the fallback for daemons predating the streaming op.
    pub poll: bool,
}

impl TopConfig {
    /// A default session against `target`: two samples a second,
    /// unbounded, ANSI, streaming.
    pub fn new(target: Target) -> TopConfig {
        TopConfig {
            target,
            interval_ms: 500,
            frames: 0,
            plain: false,
            poll: false,
        }
    }
}

/// What a finished dashboard session saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopSummary {
    /// Frames rendered.
    pub frames: u64,
    /// Baseline resets observed (daemon restarts mid-session).
    pub restarts: u64,
    /// `meta.endpoint` of the last sample, empty if none arrived.
    pub endpoint: String,
}

/// Run a dashboard session to completion, writing rendered frames to
/// `out`.
///
/// # Errors
///
/// Fails on connection/transport errors, on an error response from the
/// daemon, or on a response line that doesn't parse as a metrics
/// document.
pub fn run_top(config: &TopConfig, out: &mut dyn Write) -> io::Result<TopSummary> {
    let interval_ms = config
        .interval_ms
        .clamp(MIN_WATCH_INTERVAL_MS, MAX_WATCH_INTERVAL_MS);
    let mut client = match &config.target {
        Target::Unix(path) => Client::connect_unix(path)?,
        Target::Tcp(addr) => Client::connect_tcp(addr)?,
    };
    let mut session = RenderState::new(config.plain);

    if config.poll {
        let mut id = 1u64;
        loop {
            let line = client.request(&format!("{{\"id\":{id},\"op\":\"metrics\"}}"))?;
            id += 1;
            match interpret(&line)? {
                Some(sample) => session.show(*sample, out)?,
                None => break,
            }
            if config.frames != 0 && session.frames >= config.frames {
                break;
            }
            thread::sleep(Duration::from_millis(interval_ms));
        }
    } else {
        client.send(&format!(
            "{{\"id\":1,\"op\":\"watch\",\"interval_ms\":{interval_ms},\"frames\":{}}}",
            config.frames
        ))?;
        loop {
            let line = client.recv()?;
            match interpret(&line)? {
                Some(sample) => session.show(*sample, out)?,
                None => break,
            }
        }
    }
    Ok(session.into_summary())
}

/// Parse a response line, promoting daemon errors and parse failures to
/// `io::Error` so the caller has one error channel. `None` is the watch
/// stream's terminal marker.
fn interpret(line: &str) -> io::Result<Option<Box<Sample>>> {
    match parse_response_line(line) {
        Ok(ResponseLine::Frame(sample)) => Ok(Some(sample)),
        Ok(ResponseLine::WatchDone { .. }) => Ok(None),
        Ok(ResponseLine::Error { message }) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("daemon error: {message}"),
        )),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.message)),
    }
}

/// Carries the previous sample between frames and accumulates the
/// session summary.
struct RenderState {
    plain: bool,
    prev: Option<Sample>,
    frames: u64,
    restarts: u64,
    endpoint: String,
}

impl RenderState {
    fn new(plain: bool) -> RenderState {
        RenderState {
            plain,
            prev: None,
            frames: 0,
            restarts: 0,
            endpoint: String::new(),
        }
    }

    fn show(&mut self, sample: Sample, out: &mut dyn Write) -> io::Result<()> {
        let frame = Frame::build(self.prev.as_ref(), &sample);
        if frame.restarted {
            self.restarts += 1;
        }
        let rendered = if self.plain {
            render_plain(&frame)
        } else {
            render_ansi(&frame)
        };
        out.write_all(rendered.as_bytes())?;
        out.flush()?;
        self.frames += 1;
        self.endpoint = sample.meta.endpoint.clone();
        self.prev = Some(sample);
        Ok(())
    }

    fn into_summary(self) -> TopSummary {
        TopSummary {
            frames: self.frames,
            restarts: self.restarts,
            endpoint: self.endpoint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_serve::{Server, ServerConfig};

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mkss-top-test-{}-{tag}.sock", std::process::id()))
    }

    #[test]
    fn streaming_session_renders_the_requested_frames() {
        let sock = sock_path("stream");
        let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");
        let config = TopConfig {
            interval_ms: 10,
            frames: 3,
            plain: true,
            ..TopConfig::new(Target::Unix(sock))
        };
        let mut out = Vec::new();
        let summary = run_top(&config, &mut out).expect("session");
        assert_eq!(summary.frames, 3);
        assert_eq!(summary.restarts, 0);
        assert_eq!(summary.endpoint, "daemon");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("mkss-top · mkss-serve @ daemon").count(), 3);
        // Frames after the first carry deltas against their baseline.
        assert!(text.contains("span "), "{text}");
        assert!(!text.contains('\x1b'), "plain session leaked ANSI escapes");
        server.shutdown();
    }

    #[test]
    fn poll_mode_works_against_the_metrics_op() {
        let sock = sock_path("poll");
        let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");
        let config = TopConfig {
            interval_ms: 10,
            frames: 2,
            plain: true,
            poll: true,
            ..TopConfig::new(Target::Unix(sock))
        };
        let mut out = Vec::new();
        let summary = run_top(&config, &mut out).expect("session");
        assert_eq!(summary.frames, 2);
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("mkss-top · mkss-serve @ daemon").count(), 2);
        server.shutdown();
    }

    #[test]
    fn ansi_sessions_clear_between_frames() {
        let sock = sock_path("ansi");
        let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");
        let config = TopConfig {
            interval_ms: 10,
            frames: 2,
            ..TopConfig::new(Target::Unix(sock))
        };
        let mut out = Vec::new();
        run_top(&config, &mut out).expect("session");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches(crate::render::ANSI_CLEAR).count(), 2);
        server.shutdown();
    }

    #[test]
    fn connection_refused_surfaces_as_an_error() {
        let config = TopConfig::new(Target::Unix(sock_path("absent")));
        let mut out = Vec::new();
        assert!(run_top(&config, &mut out).is_err());
    }
}
