//! # mkss-top
//!
//! A live terminal dashboard for the mkss fleet: attach to a running
//! `mkss-serve` daemon (or snapshot an in-process registry) and watch
//! counter rates, the (m,k) distance-to-violation and queue-depth
//! histograms, per-op throughput, and worker-pool utilization refresh in
//! place.
//!
//! The crate splits cleanly into wire, model, and paint:
//!
//! * [`poll`] drives a session — a `watch` subscription streamed by the
//!   daemon, or a `metrics` polling loop as the fallback;
//! * [`parse`] turns response lines back into [`Sample`]s, tolerating
//!   older daemons (missing counters read as zero);
//! * [`frame`] computes a [`Frame`] **deterministically** from a pair of
//!   samples — rates divide counter deltas by the difference of the
//!   daemon's own `uptime_ms`, so no wall clock enters the model and a
//!   restarted daemon (sequence/uptime went backwards, or a counter
//!   shrank) resets the baseline instead of rendering negative rates;
//! * [`render`] paints a frame as plain text or ANSI — both pure
//!   functions of the frame, pinned by golden-frame tests.
//!
//! Like the rest of the workspace, the crate is std-only: rendering is
//! hand-rolled ANSI, not a TUI dependency.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use mkss_obs::{CounterId, Recorder, Registry};
//! use mkss_top::{Frame, render_plain, Sample};
//!
//! let registry = Arc::new(Registry::new(1));
//! registry.handle_at(0).incr(CounterId::JobsMet, 5);
//! let before = Sample::from_registry(&registry, 1000, 0);
//! registry.handle_at(0).incr(CounterId::JobsMet, 3);
//! let after = Sample::from_registry(&registry, 2000, 1);
//!
//! let frame = Frame::build(Some(&before), &after);
//! let text = render_plain(&frame);
//! assert!(text.contains("jobs_met"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod parse;
pub mod poll;
pub mod render;

pub use frame::{BucketRow, CounterRow, Frame, HistogramBlock, OpRate, Sample, SampleMeta};
pub use parse::{parse_response_line, ParseError, ResponseLine};
pub use poll::{run_top, Target, TopConfig, TopSummary};
pub use render::{render_ansi, render_plain, ANSI_CLEAR};
