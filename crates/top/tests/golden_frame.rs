//! Golden-frame tests: the renderers are pure functions of a [`Frame`],
//! so a hand-built sample pair pins every byte of the output — layout,
//! widths, bar scaling, rate formatting, ANSI escapes.
//!
//! After an intentional layout change, regenerate the goldens with
//! `MKSS_BLESS=1 cargo test -p mkss-top --test golden_frame` and review
//! the diff.

use mkss_obs::{CounterId, HistogramId, MetricsSnapshot};
use mkss_top::{render_ansi, render_plain, Frame, Sample, SampleMeta};

const PLAIN_GOLDEN: &str = include_str!("golden/plain.txt");
const ANSI_GOLDEN: &str = include_str!("golden/ansi.txt");

/// The "before" sample: a daemon two seconds into serving a little work.
fn before() -> Sample {
    let mut snapshot = MetricsSnapshot::empty();
    snapshot.set_counter(CounterId::JobsReleased, 40);
    snapshot.set_counter(CounterId::MandatoryReleased, 30);
    snapshot.set_counter(CounterId::OptionalSelected, 6);
    snapshot.set_counter(CounterId::OptionalSkipped, 4);
    snapshot.set_counter(CounterId::JobsMet, 36);
    snapshot.set_counter(CounterId::JobsMissed, 4);
    snapshot.set_counter(CounterId::ServeRequests, 2);
    snapshot.set_counter(CounterId::ServeOpSimulate, 2);
    snapshot.set_histogram(HistogramId::MkDistance, [2, 6, 12, 8, 4, 0, 0, 0]);
    snapshot.set_histogram(HistogramId::ServeQueueDepth, [2, 0, 0, 0, 0, 0, 0, 0]);
    snapshot.set_histogram(HistogramId::ServeOpLatencyUs, [0, 1, 1, 0, 0, 0, 0, 0]);
    Sample {
        snapshot,
        meta: SampleMeta {
            binary: "mkss-serve".to_string(),
            endpoint: "daemon".to_string(),
            seq: 4,
            uptime_ms: 2000,
            workers: 4,
            busy_workers: 1,
            queue: 64,
            queue_depth: 0,
        },
    }
}

/// The "after" sample: two daemon seconds and a burst of requests later.
fn after() -> Sample {
    let mut snapshot = MetricsSnapshot::empty();
    snapshot.set_counter(CounterId::JobsReleased, 120);
    snapshot.set_counter(CounterId::MandatoryReleased, 90);
    snapshot.set_counter(CounterId::OptionalSelected, 18);
    snapshot.set_counter(CounterId::OptionalSkipped, 12);
    snapshot.set_counter(CounterId::JobsMet, 108);
    snapshot.set_counter(CounterId::JobsMissed, 12);
    snapshot.set_counter(CounterId::MkViolations, 1);
    snapshot.set_counter(CounterId::ServeRequests, 7);
    snapshot.set_counter(CounterId::ServeOpSimulate, 5);
    snapshot.set_counter(CounterId::ServeOpCompare, 1);
    snapshot.set_counter(CounterId::ServeOpSweep, 1);
    snapshot.set_counter(CounterId::ServeWatches, 1);
    snapshot.set_histogram(HistogramId::MkDistance, [6, 18, 36, 24, 12, 0, 0, 0]);
    snapshot.set_histogram(HistogramId::ServeQueueDepth, [6, 1, 0, 0, 0, 0, 0, 0]);
    snapshot.set_histogram(HistogramId::ServeOpLatencyUs, [0, 2, 3, 1, 1, 0, 0, 0]);
    Sample {
        snapshot,
        meta: SampleMeta {
            binary: "mkss-serve".to_string(),
            endpoint: "daemon".to_string(),
            seq: 7,
            uptime_ms: 4000,
            workers: 4,
            busy_workers: 4,
            queue: 64,
            queue_depth: 3,
        },
    }
}

fn bless(name: &str, text: &str) -> bool {
    if std::env::var_os("MKSS_BLESS").is_none() {
        return false;
    }
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(path, text).expect("write golden");
    true
}

#[test]
fn golden_plain_frame() {
    let prev = before();
    let now = after();
    let text = render_plain(&Frame::build(Some(&prev), &now));
    if bless("plain.txt", &text) {
        return;
    }
    assert_eq!(text, PLAIN_GOLDEN);
}

#[test]
fn golden_ansi_frame() {
    let prev = before();
    let now = after();
    let text = render_ansi(&Frame::build(Some(&prev), &now));
    if bless("ansi.txt", &text) {
        return;
    }
    assert_eq!(text, ANSI_GOLDEN);
}

/// A baseline-free frame renders totals only: every delta and rate
/// column shows `-`, and no span appears in the header.
#[test]
fn golden_first_frame_has_no_deltas() {
    let text = render_plain(&Frame::build(None, &after()));
    if bless("first_frame.txt", &text) {
        return;
    }
    assert_eq!(text, include_str!("golden/first_frame.txt"));
}
