//! Job instances: one periodic activation of a task, plus its
//! classification and role in the standby-sparing system.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{Task, TaskId};
use crate::time::Time;

/// Identifier of a job: owning task and 1-based job index (the paper's
/// `J_ij` is `JobId { task: TaskId(i-1), index: j }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId {
    /// Owning task.
    pub task: TaskId,
    /// 1-based activation index.
    pub index: u64,
}

impl JobId {
    /// Creates a job id.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero (indices are 1-based).
    pub fn new(task: TaskId, index: u64) -> Self {
        assert!(index >= 1, "job indices are 1-based");
        JobId { task, index }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{},{}", self.task.0 + 1, self.index)
    }
}

/// Classification of a released job under the active (static or dynamic)
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: mandatory/optional is the (m,k) partition itself; a third class has no meaning in the model
pub enum JobClass {
    /// Must complete successfully; executed on both processors
    /// (main + backup copies).
    Mandatory,
    /// May be skipped; if executed, runs on exactly one processor and has
    /// no backup.
    Optional,
}

impl JobClass {
    /// `true` for [`JobClass::Mandatory`].
    #[inline]
    pub const fn is_mandatory(self) -> bool {
        matches!(self, JobClass::Mandatory)
    }
}

/// Which copy of a job a given execution is: the *main* copy on the
/// primary processor or the *backup* copy on the spare (mandatory jobs
/// only — optional jobs have a single copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: main/backup is the standby-sparing dichotomy; the scheme defines exactly two copies
pub enum CopyKind {
    /// The main copy (the paper's `J_ij`).
    Main,
    /// The backup copy (the paper's `J′_ij`).
    Backup,
    /// The single copy of an executed optional job (`O_ij`).
    Optional,
}

impl fmt::Display for CopyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopyKind::Main => write!(f, "main"),
            CopyKind::Backup => write!(f, "backup"),
            CopyKind::Optional => write!(f, "optional"),
        }
    }
}

/// One released job of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Identity (task + activation index).
    pub id: JobId,
    /// Release (arrival) time `r_ij`.
    pub release: Time,
    /// Absolute deadline `d_ij`.
    pub deadline: Time,
    /// Execution demand `c_ij` (= the task's WCET in this model).
    pub wcet: Time,
    /// Mandatory/optional classification at release.
    pub class: JobClass,
}

impl Job {
    /// Materializes the `index`-th job (**1-based**) of `task`, classified
    /// as `class`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero.
    pub fn nth(task_id: TaskId, task: &Task, index: u64, class: JobClass) -> Self {
        Job {
            id: JobId::new(task_id, index),
            release: task.release_of(index),
            deadline: task.deadline_of(index),
            wcet: task.wcet(),
            class,
        }
    }

    /// Latest time this job could start and still finish `remaining` work
    /// by its deadline.
    pub fn latest_start(&self, remaining: Time) -> Time {
        self.deadline.saturating_sub(remaining)
    }

    /// Whether `remaining` work can still complete by the deadline if the
    /// job runs uninterrupted from `now`.
    pub fn feasible_from(&self, now: Time, remaining: Time) -> bool {
        now + remaining <= self.deadline
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.class {
            JobClass::Mandatory => "M",
            JobClass::Optional => "O",
        };
        write!(
            f,
            "{}[{}] r={} d={} c={}",
            self.id, tag, self.release, self.deadline, self.wcet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    #[test]
    fn job_materialization() {
        let t = Task::from_ms(5, 4, 3, 2, 4).unwrap();
        let j = Job::nth(TaskId(0), &t, 3, JobClass::Optional);
        assert_eq!(j.release, Time::from_ms(10));
        assert_eq!(j.deadline, Time::from_ms(14));
        assert_eq!(j.wcet, Time::from_ms(3));
        assert_eq!(j.class, JobClass::Optional);
        assert!(!j.class.is_mandatory());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_index_panics() {
        JobId::new(TaskId(0), 0);
    }

    #[test]
    fn feasibility() {
        let t = Task::from_ms(5, 4, 3, 2, 4).unwrap();
        let j = Job::nth(TaskId(0), &t, 1, JobClass::Mandatory);
        // Deadline 4ms, wcet 3ms → latest start 1ms.
        assert_eq!(j.latest_start(j.wcet), Time::from_ms(1));
        assert!(j.feasible_from(Time::from_ms(1), j.wcet));
        assert!(!j.feasible_from(Time::from_us(1_001), j.wcet));
        // Partially-executed job.
        assert!(j.feasible_from(Time::from_ms(3), Time::from_ms(1)));
    }

    #[test]
    fn display_forms() {
        let t = Task::from_ms(5, 4, 3, 2, 4).unwrap();
        let j = Job::nth(TaskId(1), &t, 2, JobClass::Mandatory);
        assert_eq!(j.id.to_string(), "J2,2");
        assert!(j.to_string().contains("[M]"));
        assert_eq!(CopyKind::Main.to_string(), "main");
        assert_eq!(CopyKind::Backup.to_string(), "backup");
        assert_eq!(CopyKind::Optional.to_string(), "optional");
    }

    #[test]
    fn ordering_of_job_ids() {
        let a = JobId::new(TaskId(0), 1);
        let b = JobId::new(TaskId(0), 2);
        let c = JobId::new(TaskId(1), 1);
        assert!(a < b);
        assert!(b < c);
    }
}
