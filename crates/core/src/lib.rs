//! # mkss-core
//!
//! Task model, integer-tick time base, and (m,k)-firm machinery for the
//! `mkss` family of crates — a reproduction of *Niu & Zhu, "Reliable and
//! Energy-Aware Fixed-Priority (m,k)-Deadlines Enforcement with
//! Standby-Sparing", DATE 2020*.
//!
//! This crate is dependency-light and purely declarative: it defines
//! periodic tasks `(P, D, C, m, k)` ([`task::Task`]), fixed-priority task
//! sets ([`task::TaskSet`]), job instances ([`job::Job`]), the static
//! deeply-red / evenly-distributed partitioning patterns ([`mk::Pattern`]),
//! the sliding (m,k)-satisfaction monitor ([`mk::MkMonitor`]), and the
//! *flexibility degree* of Definition 1 ([`history::MkHistory`]).
//!
//! Scheduling analysis lives in `mkss-analysis`, the dual-processor
//! simulator in `mkss-sim`, and the paper's scheduling schemes in
//! `mkss-policies`.
//!
//! ## Example
//!
//! ```
//! use mkss_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The motivating task set of Section III.
//! let ts = TaskSet::new(vec![
//!     Task::from_ms(5, 4, 3, 2, 4)?,
//!     Task::from_ms(10, 10, 3, 1, 2)?,
//! ])?;
//!
//! // Static deeply-red pattern: jobs 1,2 of τ1 mandatory, 3,4 optional.
//! let mk = ts.task(TaskId(0)).mk();
//! assert!(Pattern::DeeplyRed.is_mandatory(mk, 1));
//! assert!(!Pattern::DeeplyRed.is_mandatory(mk, 3));
//!
//! // Dynamic classification via flexibility degree.
//! let mut h = MkHistory::new(mk);
//! assert_eq!(h.flexibility_degree(), 2);
//! h.record(JobOutcome::Missed);
//! h.record(JobOutcome::Missed);
//! assert!(h.next_is_mandatory());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fold;
pub mod history;
pub mod job;
pub mod mk;
pub mod par;
pub mod task;
pub mod time;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::error::ValidateTaskError;
    pub use crate::history::{JobOutcome, MkHistory};
    pub use crate::job::{CopyKind, Job, JobClass, JobId};
    pub use crate::mk::{MkConstraint, MkMonitor, Pattern, RotatedPattern};
    pub use crate::task::{Task, TaskId, TaskSet};
    pub use crate::time::{Time, TICKS_PER_MS};
}
