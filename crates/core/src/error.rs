//! Error types for task-model validation.

use std::error::Error as StdError;
use std::fmt;

use crate::time::Time;

/// Error returned when constructing an invalid task, constraint, or task
/// set.
///
/// ```
/// use mkss_core::mk::MkConstraint;
/// use mkss_core::error::ValidateTaskError;
///
/// let err = MkConstraint::new(4, 4).unwrap_err();
/// assert!(matches!(err, ValidateTaskError::InvalidMkPair { m: 4, k: 4 }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateTaskError {
    /// The (m,k) pair violates `0 < m < k`.
    InvalidMkPair {
        /// Offending `m`.
        m: u32,
        /// Offending `k`.
        k: u32,
    },
    /// The period is zero.
    ZeroPeriod,
    /// The worst-case execution time is zero.
    ZeroWcet,
    /// The deadline exceeds the period (constrained deadlines required).
    DeadlineExceedsPeriod {
        /// Offending deadline.
        deadline: Time,
        /// Task period.
        period: Time,
    },
    /// The worst-case execution time exceeds the deadline, so the task can
    /// never meet a deadline even alone on a processor.
    WcetExceedsDeadline {
        /// Offending WCET.
        wcet: Time,
        /// Task deadline.
        deadline: Time,
    },
    /// A task set was constructed with no tasks.
    EmptyTaskSet,
}

impl fmt::Display for ValidateTaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateTaskError::InvalidMkPair { m, k } => {
                write!(f, "(m,k) pair ({m},{k}) violates 0 < m < k")
            }
            ValidateTaskError::ZeroPeriod => write!(f, "task period must be positive"),
            ValidateTaskError::ZeroWcet => write!(f, "task WCET must be positive"),
            ValidateTaskError::DeadlineExceedsPeriod { deadline, period } => {
                write!(f, "deadline {deadline} exceeds period {period}")
            }
            ValidateTaskError::WcetExceedsDeadline { wcet, deadline } => {
                write!(f, "WCET {wcet} exceeds deadline {deadline}")
            }
            ValidateTaskError::EmptyTaskSet => write!(f, "task set contains no tasks"),
        }
    }
}

impl StdError for ValidateTaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ValidateTaskError::InvalidMkPair { m: 3, k: 3 }.to_string(),
            "(m,k) pair (3,3) violates 0 < m < k"
        );
        assert_eq!(
            ValidateTaskError::ZeroPeriod.to_string(),
            "task period must be positive"
        );
        assert_eq!(
            ValidateTaskError::ZeroWcet.to_string(),
            "task WCET must be positive"
        );
        let e = ValidateTaskError::DeadlineExceedsPeriod {
            deadline: Time::from_ms(6),
            period: Time::from_ms(5),
        };
        assert_eq!(e.to_string(), "deadline 6ms exceeds period 5ms");
        let e = ValidateTaskError::WcetExceedsDeadline {
            wcet: Time::from_ms(6),
            deadline: Time::from_ms(5),
        };
        assert_eq!(e.to_string(), "WCET 6ms exceeds deadline 5ms");
        assert_eq!(
            ValidateTaskError::EmptyTaskSet.to_string(),
            "task set contains no tasks"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn StdError + Send + Sync> = Box::new(ValidateTaskError::ZeroPeriod);
        assert!(e.source().is_none());
    }
}
