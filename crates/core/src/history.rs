//! Per-task execution history and the *flexibility degree* (Definition 1).
//!
//! The selective scheme classifies each job **at its release** from the
//! recent outcome history: a job is *mandatory* iff its flexibility degree
//! is 0, and only optional jobs with flexibility degree exactly 1 are
//! selected for execution (Section IV, principle (i)).

use serde::{Deserialize, Serialize};

use crate::mk::MkConstraint;

/// Outcome of one job with respect to its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: met/missed is the (m,k) model's complete outcome alphabet; every history consumer matches exhaustively
pub enum JobOutcome {
    /// The job completed successfully by its deadline (an *effective* job).
    Met,
    /// The job missed its deadline, failed, or was skipped.
    Missed,
}

impl JobOutcome {
    /// `true` for [`JobOutcome::Met`].
    #[inline]
    pub const fn is_met(self) -> bool {
        matches!(self, JobOutcome::Met)
    }
}

/// Sliding execution history of the most recent `k − 1` job outcomes of a
/// task, supporting flexibility-degree queries.
///
/// History before the first job is treated as all-met, which matches the
/// paper's motivating examples: the very first job of a task with
/// constraint (m,k) has flexibility degree `k − m` (e.g. `FD(O₁₁) = 2` for
/// τ1 = (5,4,3,2,4) and `FD(O₂₁) = 1` for τ2 = (10,10,3,1,2) in Section
/// III).
///
/// # Examples
///
/// ```
/// use mkss_core::history::{JobOutcome, MkHistory};
/// use mkss_core::mk::MkConstraint;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mk = MkConstraint::new(2, 4)?;
/// let mut h = MkHistory::new(mk);
/// assert_eq!(h.flexibility_degree(), 2); // fresh task: k − m
///
/// h.record(JobOutcome::Missed);
/// assert_eq!(h.flexibility_degree(), 1); // one more miss tolerable
///
/// h.record(JobOutcome::Missed);
/// assert_eq!(h.flexibility_degree(), 0); // next job is mandatory
///
/// // Both misses are still inside the window of 3, so a single success
/// // does not yet buy back any slack for (2,4)…
/// h.record(JobOutcome::Met);
/// assert_eq!(h.flexibility_degree(), 0);
/// // …but a second one pushes a miss out of every future window.
/// h.record(JobOutcome::Met);
/// assert_eq!(h.flexibility_degree(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MkHistory {
    mk: MkConstraint,
    /// Outcomes of the last `k − 1` jobs, oldest first. Length is always
    /// exactly `k − 1`; pre-history is padded with `Met`.
    window: Vec<JobOutcome>,
    /// Total jobs recorded (for diagnostics).
    recorded: u64,
    /// Total jobs recorded as met.
    met_total: u64,
}

impl MkHistory {
    /// Creates a history for a task with the given constraint, with the
    /// pre-history treated as all-met.
    pub fn new(mk: MkConstraint) -> Self {
        MkHistory {
            mk,
            window: vec![JobOutcome::Met; (mk.k() - 1) as usize],
            recorded: 0,
            met_total: 0,
        }
    }

    /// The task's (m,k) constraint.
    pub fn constraint(&self) -> MkConstraint {
        self.mk
    }

    /// Resets the history to its initial all-met pre-history state,
    /// keeping the window allocation. Equivalent to (but cheaper than)
    /// `*self = MkHistory::new(self.constraint())`; used by simulation
    /// workspaces that are reused across runs.
    pub fn reset(&mut self) {
        self.window.fill(JobOutcome::Met);
        self.recorded = 0;
        self.met_total = 0;
    }

    /// Records the outcome of the next job in release order.
    pub fn record(&mut self, outcome: JobOutcome) {
        if !self.window.is_empty() {
            self.window.remove(0);
            self.window.push(outcome);
        }
        self.recorded += 1;
        if outcome.is_met() {
            self.met_total += 1;
        }
    }

    /// Number of met outcomes among the most recent `n` recorded jobs
    /// (padding with met pre-history when fewer than `n` have been
    /// recorded).
    ///
    /// # Panics
    ///
    /// Panics if `n > k − 1` — the history only retains `k − 1` outcomes.
    pub fn met_in_last(&self, n: u32) -> u32 {
        let len = self.window.len();
        assert!(
            n as usize <= len,
            "history window only retains k-1 = {len} outcomes, asked for {n}"
        );
        self.window[len - n as usize..]
            .iter()
            .filter(|o| o.is_met())
            .count() as u32
    }

    /// The flexibility degree (Definition 1) of the **next** job of this
    /// task: the number of consecutive deadline misses the task can still
    /// tolerate, starting from that job, without ever violating the (m,k)
    /// constraint (assuming all later jobs are then made mandatory and
    /// succeed).
    ///
    /// Derivation: if the next `f` jobs all miss, the tightest window is
    /// the one ending at the `f`-th miss; it contains the `k − f` most
    /// recent history outcomes plus the `f` misses, so it needs
    /// `met_in_last(k − f) ≥ m`. Earlier windows (ending at miss `j < f`)
    /// contain `k − j ≥ k − f` recent outcomes, a superset of met
    /// outcomes, so the `f`-th window is binding and
    ///
    /// ```text
    /// FD = max { f ∈ [0, k−m] : met_in_last(k − f) ≥ m }
    /// ```
    ///
    /// (Windows stretching past the `f`-th miss contain future jobs, which
    /// are assumed mandatory-and-met and can only help.)
    pub fn flexibility_degree(&self) -> u32 {
        let m = self.mk.m();
        let k = self.mk.k();
        let mut fd = 0u32;
        for f in 1..=(k - m) {
            // Window of the f-th hypothetical miss: last (k - f) outcomes,
            // of which (k - 1) - (f - 1) = k - f are in our window buffer.
            if self.met_in_last(k - f) >= m {
                fd = f;
            } else {
                break;
            }
        }
        fd
    }

    /// Whether the next job **must** be executed (flexibility degree 0).
    pub fn next_is_mandatory(&self) -> bool {
        self.flexibility_degree() == 0
    }

    /// The *distance-based priority* metric of Hamdaoui & Ramanathan's
    /// DBP scheme (the paper's reference \[10\]): the number of consecutive
    /// deadline misses, starting from the next job, that would drive the
    /// task into a failing (m,k) state. Smaller = more urgent.
    ///
    /// This is exactly [`MkHistory::flexibility_degree`]` + 1`: a task
    /// that can still tolerate `FD` misses fails on the `FD + 1`-th.
    ///
    /// ```
    /// use mkss_core::history::{JobOutcome, MkHistory};
    /// use mkss_core::mk::MkConstraint;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut h = MkHistory::new(MkConstraint::new(1, 3)?);
    /// assert_eq!(h.dbp_distance(), 3); // fresh: k − m + 1
    /// h.record(JobOutcome::Missed);
    /// h.record(JobOutcome::Missed);
    /// assert_eq!(h.dbp_distance(), 1); // one more miss fails
    /// # Ok(())
    /// # }
    /// ```
    pub fn dbp_distance(&self) -> u32 {
        self.flexibility_degree() + 1
    }

    /// Total number of outcomes recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Total number of met outcomes recorded.
    pub fn met_total(&self) -> u64 {
        self.met_total
    }

    /// The retained window (oldest first), mainly for diagnostics.
    pub fn window(&self) -> &[JobOutcome] {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mk::MkMonitor;
    use proptest::prelude::*;

    fn mk(m: u32, k: u32) -> MkConstraint {
        MkConstraint::new(m, k).unwrap()
    }

    #[test]
    fn fresh_history_fd_is_k_minus_m() {
        assert_eq!(MkHistory::new(mk(2, 4)).flexibility_degree(), 2);
        assert_eq!(MkHistory::new(mk(1, 2)).flexibility_degree(), 1);
        assert_eq!(MkHistory::new(mk(3, 5)).flexibility_degree(), 2);
        assert_eq!(MkHistory::new(mk(19, 20)).flexibility_degree(), 1);
    }

    #[test]
    fn paper_section_iii_footnote() {
        // τ1 = (5,4,3,2,4): FD of the first job is 2 (can tolerate two
        // misses); τ2 = (10,10,3,1,2): FD of the first job is 1, hence τ2's
        // first job is "more urgent" and is executed first.
        assert_eq!(MkHistory::new(mk(2, 4)).flexibility_degree(), 2);
        assert_eq!(MkHistory::new(mk(1, 2)).flexibility_degree(), 1);
    }

    #[test]
    fn misses_decrease_fd_to_zero() {
        let mut h = MkHistory::new(mk(2, 4));
        h.record(JobOutcome::Missed);
        assert_eq!(h.flexibility_degree(), 1);
        h.record(JobOutcome::Missed);
        assert_eq!(h.flexibility_degree(), 0);
        assert!(h.next_is_mandatory());
    }

    #[test]
    fn success_restores_fd() {
        let mut h = MkHistory::new(mk(1, 2));
        h.record(JobOutcome::Missed);
        assert_eq!(h.flexibility_degree(), 0);
        h.record(JobOutcome::Met);
        assert_eq!(h.flexibility_degree(), 1);
    }

    #[test]
    fn fd_counts_interleaved_outcomes() {
        // (2,4): window keeps 3 outcomes.
        let mut h = MkHistory::new(mk(2, 4));
        for o in [JobOutcome::Met, JobOutcome::Missed, JobOutcome::Met] {
            h.record(o);
        }
        // window = [Met, Missed, Met]; met_in_last(3)=2>=2 → f=1 ok;
        // met_in_last(2)=1<2 → stop. FD = 1.
        assert_eq!(h.flexibility_degree(), 1);
        assert_eq!(h.met_in_last(3), 2);
        assert_eq!(h.met_in_last(2), 1);
        assert_eq!(h.met_in_last(1), 1);
        assert_eq!(h.met_in_last(0), 0);
    }

    #[test]
    fn bookkeeping_counters() {
        let mut h = MkHistory::new(mk(1, 3));
        h.record(JobOutcome::Met);
        h.record(JobOutcome::Missed);
        h.record(JobOutcome::Met);
        assert_eq!(h.recorded(), 3);
        assert_eq!(h.met_total(), 2);
        assert_eq!(h.window().len(), 2);
        assert_eq!(h.constraint(), mk(1, 3));
    }

    /// Oracle: brute-force FD by simulating f misses over the *full*
    /// outcome sequence (with met pre-history) and checking every window
    /// of k via MkMonitor.
    fn oracle_fd(mk_c: MkConstraint, outcomes: &[JobOutcome]) -> u32 {
        let k = mk_c.k() as usize;
        let m = mk_c.m() as usize;
        // Pre-history counts as met; FD is defined relative to the current
        // state, so only windows ending at one of the hypothetical future
        // misses are inspected (violations an arbitrary generated history
        // already contains are not the future misses' fault).
        let mut seq: Vec<bool> = vec![true; k];
        seq.extend(outcomes.iter().map(|o| o.is_met()));
        let hist_len = seq.len();
        let mut best = 0;
        'f: for f in 1..=(mk_c.k() - mk_c.m()) {
            let mut s = seq.clone();
            s.extend(std::iter::repeat_n(false, f as usize));
            for end in hist_len..s.len() {
                let window = &s[end + 1 - k..=end];
                if window.iter().filter(|&&b| b).count() < m {
                    continue 'f;
                }
            }
            best = f;
        }
        best
    }

    proptest! {
        #[test]
        fn fd_matches_bruteforce_oracle(
            m in 1u32..6,
            extra in 1u32..6,
            raw in proptest::collection::vec(any::<bool>(), 0..40),
        ) {
            let k = m + extra;
            let c = mk(m, k);
            let outcomes: Vec<JobOutcome> = raw
                .iter()
                .map(|&b| if b { JobOutcome::Met } else { JobOutcome::Missed })
                .collect();
            let mut h = MkHistory::new(c);
            for &o in &outcomes {
                h.record(o);
            }
            prop_assert_eq!(h.flexibility_degree(), oracle_fd(c, &outcomes));
        }

        /// Executing misses exactly FD times never violates; FD+1 misses do.
        #[test]
        fn fd_is_tight(
            m in 1u32..5,
            extra in 1u32..5,
            raw in proptest::collection::vec(any::<bool>(), 0..30),
        ) {
            let k = m + extra;
            let c = mk(m, k);
            let mut h = MkHistory::new(c);
            let mut mon = MkMonitor::new(c);
            for &b in &raw {
                let o = if b { JobOutcome::Met } else { JobOutcome::Missed };
                // Keep history consistent: only feed outcomes that do not
                // already violate (a real scheduler would never allow them).
                if !b && h.flexibility_degree() == 0 {
                    h.record(JobOutcome::Met);
                    mon.record(true);
                    continue;
                }
                h.record(o);
                mon.record(o.is_met());
                prop_assert!(!mon.violated());
            }
            let fd = h.flexibility_degree();
            // fd misses are safe…
            let mut mon2 = mon.clone();
            for _ in 0..fd {
                mon2.record(false);
            }
            prop_assert!(!mon2.violated());
            // …but one more is not (when fd < k-m headroom remains checked
            // by oracle equivalence above; here assert violation).
            mon2.record(false);
            if fd < k - m {
                prop_assert!(mon2.violated());
            }
        }
    }
}
