//! Fixed-order float reductions.
//!
//! Float addition is not associative, so the *order* of a reduction is
//! part of its value: re-chunking an iterator, parallelising a sum, or
//! reversing a range silently changes low bits and breaks the
//! workspace's bit-identical-across-`--jobs` guarantee. Every float
//! reduction in library code therefore goes through these helpers — one
//! canonical left-to-right fold, one place to audit — and the
//! `float-fold-determinism` lint (MKSS-L011) enforces it.
//!
//! The helpers are exactly `Iterator::sum` for `f64` (a left fold from
//! `0.0`), so migrating a `.sum()` call here is byte-identical; what
//! changes is that the order is now *named* and cannot be refactored
//! away by accident.

/// Left-to-right sum of a slice: `((0.0 + x₀) + x₁) + …`.
pub fn sum_f64(xs: &[f64]) -> f64 {
    sum_f64_by(xs, |x| *x)
}

/// Left-to-right sum of `f(item)` over the iterator, in iteration
/// order.
pub fn sum_f64_by<I, F>(items: I, mut f: F) -> f64
where
    I: IntoIterator,
    F: FnMut(I::Item) -> f64,
{
    let mut acc = 0.0f64;
    for item in items {
        acc += f(item);
    }
    acc
}

/// Mean of a slice in index order; `0.0` for an empty slice.
pub fn mean_f64(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    sum_f64(xs) / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_iterator_sum_bit_for_bit() {
        // A sequence engineered so order matters: left-to-right the 1.0
        // is absorbed into 1e16 and the total is 0.0, while reversed the
        // big terms cancel first and the 1.0 survives. Agreement with
        // Iterator::sum is therefore evidence of the same fold order,
        // not just the same multiset.
        let xs = [1.0f64, 1e16, -1e16];
        let iter_sum: f64 = xs.iter().sum();
        assert_eq!(sum_f64(&xs).to_bits(), iter_sum.to_bits());
        assert_eq!(sum_f64(&xs), 0.0);
        let rev: f64 = xs.iter().rev().sum();
        assert_eq!(rev, 1.0);
        assert_ne!(sum_f64(&xs).to_bits(), rev.to_bits());
    }

    #[test]
    fn by_and_mean() {
        let xs = [1.5, 2.5, 4.0];
        assert_eq!(sum_f64_by(&xs, |x| x * 2.0), 16.0);
        assert_eq!(mean_f64(&xs), 8.0 / 3.0);
        assert_eq!(mean_f64(&[]), 0.0);
    }
}
