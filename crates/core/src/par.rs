//! Deterministic work-sharing over scoped threads.
//!
//! The experiment pipeline fans independent work items (task-set
//! simulations, buckets, replications) across a fixed worker pool built
//! on [`std::thread::scope`] — no external dependencies. Results are
//! merged back **by item index** into pre-sized slots, so the output of
//! [`map_indexed`] is bit-identical to the serial loop regardless of the
//! worker count or OS scheduling.

use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Resolves a `--jobs` knob: `0` means "use all available parallelism",
/// anything else is taken literally (minimum 1).
#[must_use]
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Applies `f` to every item of `items` using up to `jobs` worker threads
/// (`0` = available parallelism) and returns the results **in item
/// order**. Work is distributed dynamically (an atomic cursor), but each
/// result lands in its item's slot, so the output is identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` — the
/// serial fallback actually used when `jobs` resolves to 1 or there is
/// at most one item.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
pub fn map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_jobs(jobs).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut harvested: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        // mkss-lint: ordering — index claim only: each i is processed by exactly one worker, and results flow back through scope join, which synchronizes
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in harvested.drain(..).flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        // mkss-lint: allow(no-unwrap-in-lib) — the worker pool claims each index exactly once, so every slot is filled
        .map(|s| s.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// A unit of work submitted to a [`WorkerPool`].
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a [`WorkerPool::try_submit`] call was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitErrorKind {
    /// The bounded queue is at capacity — backpressure: the caller should
    /// shed the job (and count the rejection) rather than block.
    QueueFull,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

/// Error returned by [`WorkerPool::try_submit`], carrying the refused job
/// back to the caller so nothing is silently dropped.
#[non_exhaustive]
pub struct SubmitError {
    kind: SubmitErrorKind,
    job: Job,
}

impl SubmitError {
    /// Why the job was refused.
    pub fn kind(&self) -> SubmitErrorKind {
        self.kind
    }

    /// Recovers the refused job (e.g. to run it inline or retry later).
    pub fn into_job(self) -> Job {
        self.job
    }
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubmitError")
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SubmitErrorKind::QueueFull => write!(f, "worker pool queue is full"),
            SubmitErrorKind::Closed => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct PoolState {
    queue: VecDeque<Job>,
    open: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    capacity: usize,
    busy: AtomicUsize,
}

impl PoolShared {
    /// Locks the state, recovering from a poisoned mutex (a panicking job
    /// must not wedge the whole pool).
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A persistent worker pool with a **bounded** job queue.
///
/// Where [`map_indexed`] fans a fixed batch over scoped threads and joins
/// immediately, `WorkerPool` serves an *open-ended stream* of jobs — the
/// shape a long-running daemon needs. The queue bound is the backpressure
/// mechanism: [`WorkerPool::try_submit`] never blocks, and a refused job
/// is handed back via [`SubmitError::into_job`] so the caller can shed it
/// explicitly (`mkss-serve` answers the client with an `overloaded`
/// error and bumps a rejection counter).
///
/// Shutdown is graceful by construction: [`WorkerPool::shutdown`] (and
/// `Drop`) closes the queue, lets the workers **drain every job already
/// accepted**, and joins each worker thread — no work is lost and no
/// thread is leaked.
///
/// ```
/// use mkss_core::par::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2, 16);
/// let hits = Arc::new(AtomicU64::new(0));
/// for _ in 0..10 {
///     let hits = Arc::clone(&hits);
///     pool.try_submit(Box::new(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     }))
///     .expect("queue has room");
/// }
/// pool.shutdown(); // drains the queue, joins the workers
/// assert_eq!(hits.load(Ordering::Relaxed), 10);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (`0` = available parallelism)
    /// with room for `queue_capacity` pending jobs (minimum 1).
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        let worker_count = effective_jobs(workers);
        let capacity = queue_capacity.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::with_capacity(capacity),
                open: true,
            }),
            work_ready: Condvar::new(),
            capacity,
            busy: AtomicUsize::new(0),
        });
        let handles = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (accepted but not yet picked up by a
    /// worker). A scheduling-dependent instantaneous reading — use it for
    /// telemetry, never for results.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Workers currently running a job. Like [`WorkerPool::queue_depth`]
    /// this is a scheduling-dependent instantaneous reading — it feeds
    /// utilization telemetry (`mkss-top`'s pool gauge), never results.
    pub fn busy_count(&self) -> usize {
        // mkss-lint: ordering — telemetry gauge; any momentarily-stale reading is equally valid
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Enqueues `job` without blocking.
    ///
    /// Returns the queue depth *after* the enqueue (so callers can feed a
    /// depth histogram with the same lock acquisition).
    ///
    /// # Errors
    ///
    /// Returns the job back inside [`SubmitError`] when the queue is at
    /// capacity ([`SubmitErrorKind::QueueFull`]) or the pool is shutting
    /// down ([`SubmitErrorKind::Closed`]).
    pub fn try_submit(&self, job: Job) -> Result<usize, SubmitError> {
        let mut state = self.shared.lock();
        if !state.open {
            return Err(SubmitError {
                kind: SubmitErrorKind::Closed,
                job,
            });
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError {
                kind: SubmitErrorKind::QueueFull,
                job,
            });
        }
        state.queue.push_back(job);
        let depth = state.queue.len();
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(depth)
    }

    /// Closes the queue, drains every accepted job, and joins all worker
    /// threads. Propagates the first worker panic, if any.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut state = self.shared.lock();
            state.open = false;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                // Drain-before-exit: accepted jobs run even after close.
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if !state.open {
                    break None;
                }
                state = match shared.work_ready.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        match job {
            Some(job) => {
                // mkss-lint: ordering — commutative gauge increment/decrement read only by the Relaxed telemetry load in busy_count
                shared.busy.fetch_add(1, Ordering::Relaxed);
                job();
                // mkss-lint: ordering — see the increment above; the pair never orders other memory
                shared.busy.fetch_sub(1, Ordering::Relaxed);
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = map_indexed(1, &items, |i, &x| x * 3 + i as u64);
        for jobs in [2, 4, 16] {
            let parallel = map_indexed(jobs, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(map_indexed(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map_indexed(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = map_indexed(0, &items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        map_indexed(4, &items, |_, &x| {
            assert!(x < 60, "boom");
            x
        });
    }

    #[test]
    fn pool_runs_every_accepted_job() {
        use std::sync::atomic::AtomicU64;
        let pool = WorkerPool::new(3, 64);
        assert_eq!(pool.worker_count(), 3);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.try_submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }))
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_rejects_beyond_capacity_and_returns_the_job() {
        use std::sync::mpsc;
        // One worker, blocked on a gate, so queued jobs cannot drain.
        let pool = WorkerPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opens");
        }))
        .expect("first job fits");
        started_rx.recv().expect("worker picked up the blocker");
        // The worker holds the blocker; the queue itself has room for 2.
        assert_eq!(pool.try_submit(Box::new(|| {})).expect("fits"), 1);
        assert_eq!(pool.try_submit(Box::new(|| {})).expect("fits"), 2);
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        let rejected = pool
            .try_submit(Box::new(move || {
                hits2.fetch_add(1, Ordering::Relaxed);
            }))
            .expect_err("queue is full");
        assert_eq!(rejected.kind(), SubmitErrorKind::QueueFull);
        assert!(rejected.to_string().contains("full"));
        assert_eq!(pool.queue_depth(), 2);
        // The caller gets the job back and can run it inline.
        (rejected.into_job())();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        gate_tx.send(()).expect("worker waiting");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_joining() {
        use std::sync::atomic::AtomicU64;
        use std::sync::mpsc;
        let pool = WorkerPool::new(1, 32);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opens");
        }))
        .expect("fits");
        started_rx.recv().expect("worker busy");
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }))
            .expect("fits");
        }
        // Release the blocker from another thread *after* shutdown began.
        let opener = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let _ = gate_tx.send(());
        });
        pool.shutdown();
        opener.join().expect("opener finishes");
        assert_eq!(done.load(Ordering::Relaxed), 10, "queued jobs were lost");
    }

    #[test]
    fn busy_count_tracks_running_jobs() {
        use std::sync::mpsc;
        let pool = WorkerPool::new(2, 8);
        assert_eq!(pool.busy_count(), 0);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opens");
        }))
        .expect("fits");
        started_rx.recv().expect("worker picked up the job");
        assert_eq!(pool.busy_count(), 1);
        gate_tx.send(()).expect("worker waiting");
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_refused_as_closed() {
        let mut pool = WorkerPool::new(1, 4);
        pool.shutdown_inner();
        let err = pool.try_submit(Box::new(|| {})).expect_err("closed");
        assert_eq!(err.kind(), SubmitErrorKind::Closed);
        assert!(format!("{err:?}").contains("Closed"));
    }
}
