//! Deterministic work-sharing over scoped threads.
//!
//! The experiment pipeline fans independent work items (task-set
//! simulations, buckets, replications) across a fixed worker pool built
//! on [`std::thread::scope`] — no external dependencies. Results are
//! merged back **by item index** into pre-sized slots, so the output of
//! [`map_indexed`] is bit-identical to the serial loop regardless of the
//! worker count or OS scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a `--jobs` knob: `0` means "use all available parallelism",
/// anything else is taken literally (minimum 1).
#[must_use]
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Applies `f` to every item of `items` using up to `jobs` worker threads
/// (`0` = available parallelism) and returns the results **in item
/// order**. Work is distributed dynamically (an atomic cursor), but each
/// result lands in its item's slot, so the output is identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` — the
/// serial fallback actually used when `jobs` resolves to 1 or there is
/// at most one item.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
pub fn map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_jobs(jobs).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut harvested: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in harvested.drain(..).flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        // mkss-lint: allow(no-unwrap-in-lib) — the worker pool claims each index exactly once, so every slot is filled
        .map(|s| s.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = map_indexed(1, &items, |i, &x| x * 3 + i as u64);
        for jobs in [2, 4, 16] {
            let parallel = map_indexed(jobs, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(map_indexed(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map_indexed(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = map_indexed(0, &items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        map_indexed(4, &items, |_, &x| {
            assert!(x < 60, "boom");
            x
        });
    }
}
