//! Periodic tasks with (m,k)-firm constraints and fixed-priority task sets.
//!
//! A task is the 5-tuple `(P, D, C, m, k)` of the paper's system model:
//! period, (constrained) relative deadline, worst-case execution time, and
//! the (m,k) constraint. Priorities follow the paper's convention: τ_j has
//! lower priority than τ_i iff `j > i`, i.e. **index order is priority
//! order** within a [`TaskSet`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ValidateTaskError;
use crate::mk::MkConstraint;
use crate::time::{lcm_time, Time};

/// Identifier of a task inside a [`TaskSet`]: its index, which is also its
/// fixed priority (0 = highest).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 1-based in display, matching the paper's τ1, τ2, ….
        write!(f, "τ{}", self.0 + 1)
    }
}

/// A periodic (m,k)-firm task `(P, D, C, m, k)`.
///
/// # Examples
///
/// ```
/// use mkss_core::task::Task;
/// use mkss_core::time::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // τ1 = (5, 4, 3, 2, 4) from the paper's Section III example,
/// // in milliseconds.
/// let t = Task::new(
///     Time::from_ms(5),
///     Time::from_ms(4),
///     Time::from_ms(3),
///     2,
///     4,
/// )?;
/// assert_eq!(t.utilization(), 0.6);
/// assert_eq!(t.mk_utilization(), 0.3); // (m/k)·(C/P)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    period: Time,
    deadline: Time,
    wcet: Time,
    mk: MkConstraint,
}

impl Task {
    /// Creates a task `(P, D, C, m, k)`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateTaskError`] if `P = 0`, `C = 0`, `D > P`,
    /// `C > D`, or `0 < m < k` fails.
    pub fn new(
        period: Time,
        deadline: Time,
        wcet: Time,
        m: u32,
        k: u32,
    ) -> Result<Self, ValidateTaskError> {
        let mk = MkConstraint::new(m, k)?;
        Self::with_constraint(period, deadline, wcet, mk)
    }

    /// Creates a task from an existing [`MkConstraint`].
    ///
    /// # Errors
    ///
    /// Same as [`Task::new`], minus the (m,k) validation.
    pub fn with_constraint(
        period: Time,
        deadline: Time,
        wcet: Time,
        mk: MkConstraint,
    ) -> Result<Self, ValidateTaskError> {
        if period.is_zero() {
            return Err(ValidateTaskError::ZeroPeriod);
        }
        if wcet.is_zero() {
            return Err(ValidateTaskError::ZeroWcet);
        }
        if deadline > period {
            return Err(ValidateTaskError::DeadlineExceedsPeriod { deadline, period });
        }
        if wcet > deadline {
            return Err(ValidateTaskError::WcetExceedsDeadline { wcet, deadline });
        }
        Ok(Task {
            period,
            deadline,
            wcet,
            mk,
        })
    }

    /// Convenience constructor with all time quantities in whole
    /// milliseconds, matching the paper's examples.
    ///
    /// # Errors
    ///
    /// Same as [`Task::new`].
    pub fn from_ms(
        period_ms: u64,
        deadline_ms: u64,
        wcet_ms: u64,
        m: u32,
        k: u32,
    ) -> Result<Self, ValidateTaskError> {
        Task::new(
            Time::from_ms(period_ms),
            Time::from_ms(deadline_ms),
            Time::from_ms(wcet_ms),
            m,
            k,
        )
    }

    /// Period `P`.
    #[inline]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Relative deadline `D` (≤ `P`).
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Worst-case execution time `C`.
    #[inline]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// The (m,k) constraint.
    #[inline]
    pub fn mk(&self) -> MkConstraint {
        self.mk
    }

    /// Classic utilization `C/P`.
    pub fn utilization(&self) -> f64 {
        self.wcet.ticks() as f64 / self.period.ticks() as f64
    }

    /// (m,k)-utilization contribution `m·C / (k·P)` — the mandatory-load
    /// density under any pattern with exactly `m` mandatory jobs per `k`.
    pub fn mk_utilization(&self) -> f64 {
        self.utilization() * self.mk.ratio()
    }

    /// Release time of the `j`-th job (**1-based**): `(j − 1)·P`.
    ///
    /// # Panics
    ///
    /// Panics if `job_index` is zero.
    pub fn release_of(&self, job_index: u64) -> Time {
        assert!(job_index >= 1, "job indices are 1-based");
        self.period * (job_index - 1)
    }

    /// Absolute deadline of the `j`-th job (**1-based**).
    ///
    /// # Panics
    ///
    /// Panics if `job_index` is zero.
    pub fn deadline_of(&self, job_index: u64) -> Time {
        self.release_of(job_index) + self.deadline
    }

    /// The task's *pattern hyperperiod* `k·P`: the span after which the
    /// deeply-red pattern repeats.
    pub fn pattern_period(&self) -> Time {
        self.period * u64::from(self.mk.k())
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {}, {})",
            self.period,
            self.deadline,
            self.wcet,
            self.mk.m(),
            self.mk.k()
        )
    }
}

/// An ordered set of tasks; index order is fixed-priority order
/// (index 0 = highest priority), as in the paper's system model.
///
/// # Examples
///
/// ```
/// use mkss_core::task::{Task, TaskSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The Section III motivating set.
/// let ts = TaskSet::new(vec![
///     Task::from_ms(5, 4, 3, 2, 4)?,
///     Task::from_ms(10, 10, 3, 1, 2)?,
/// ])?;
/// assert_eq!(ts.len(), 2);
/// assert!((ts.mk_utilization() - (0.3 + 0.15)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set from tasks in priority order.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateTaskError::EmptyTaskSet`] if `tasks` is empty.
    pub fn new(tasks: Vec<Task>) -> Result<Self, ValidateTaskError> {
        if tasks.is_empty() {
            return Err(ValidateTaskError::EmptyTaskSet);
        }
        Ok(TaskSet { tasks })
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false`: construction rejects empty sets. Provided for
    /// `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Fallible lookup.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0)
    }

    /// Iterates over `(TaskId, &Task)` in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// All task ids in priority order.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len()).map(TaskId)
    }

    /// The tasks as a slice, in priority order.
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// Total classic utilization `Σ Cᵢ/Pᵢ`, summed in priority order.
    pub fn utilization(&self) -> f64 {
        crate::fold::sum_f64_by(&self.tasks, Task::utilization)
    }

    /// Total (m,k)-utilization `Σ mᵢCᵢ/(kᵢPᵢ)` — the x-axis of the paper's
    /// Figure 6 — summed in priority order.
    pub fn mk_utilization(&self) -> f64 {
        crate::fold::sum_f64_by(&self.tasks, Task::mk_utilization)
    }

    /// The set's *pattern hyperperiod* `LCM_i(kᵢ·Pᵢ)`, saturating at
    /// [`Time::MAX`] when astronomically large.
    pub fn hyperperiod(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::pattern_period)
            .fold(Time::from_ticks(1), lcm_time)
    }

    /// The *task-level* hyperperiod `LCM_{q ≤ i}(k_q·P_q)` used by
    /// Definition 5 for the postponement interval of τ_i (only tasks of
    /// equal or higher priority matter).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn hyperperiod_up_to(&self, id: TaskId) -> Time {
        assert!(id.0 < self.tasks.len(), "task id out of range");
        self.tasks[..=id.0]
            .iter()
            .map(Task::pattern_period)
            .fold(Time::from_ticks(1), lcm_time)
    }
}

impl FromIterator<Task> for TaskSet {
    /// Collects tasks in priority order.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; use [`TaskSet::new`] for fallible
    /// construction.
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        // mkss-lint: allow(no-unwrap-in-lib) — FromIterator cannot return Result; the panic is documented above
        TaskSet::new(iter.into_iter().collect()).expect("non-empty task iterator")
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TaskSet ({} tasks):", self.tasks.len())?;
        for (id, t) in self.iter() {
            writeln!(f, "  {id} = {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn task_validation() {
        assert!(Task::from_ms(5, 4, 3, 2, 4).is_ok());
        assert_eq!(
            Task::new(Time::ZERO, Time::ZERO, Time::ZERO, 1, 2),
            Err(ValidateTaskError::ZeroPeriod)
        );
        assert_eq!(
            Task::new(Time::from_ms(5), Time::from_ms(5), Time::ZERO, 1, 2),
            Err(ValidateTaskError::ZeroWcet)
        );
        assert!(matches!(
            Task::from_ms(5, 6, 3, 1, 2),
            Err(ValidateTaskError::DeadlineExceedsPeriod { .. })
        ));
        assert!(matches!(
            Task::from_ms(5, 3, 4, 1, 2),
            Err(ValidateTaskError::WcetExceedsDeadline { .. })
        ));
        assert!(matches!(
            Task::from_ms(5, 4, 3, 0, 2),
            Err(ValidateTaskError::InvalidMkPair { .. })
        ));
    }

    #[test]
    fn task_accessors_and_math() {
        let t = Task::from_ms(10, 8, 2, 1, 2).unwrap();
        assert_eq!(t.period(), Time::from_ms(10));
        assert_eq!(t.deadline(), Time::from_ms(8));
        assert_eq!(t.wcet(), Time::from_ms(2));
        assert_eq!(t.mk().m(), 1);
        assert_eq!(t.utilization(), 0.2);
        assert_eq!(t.mk_utilization(), 0.1);
        assert_eq!(t.pattern_period(), Time::from_ms(20));
    }

    #[test]
    fn job_release_and_deadline() {
        let t = Task::from_ms(5, 4, 3, 2, 4).unwrap();
        assert_eq!(t.release_of(1), Time::ZERO);
        assert_eq!(t.release_of(4), Time::from_ms(15));
        assert_eq!(t.deadline_of(1), Time::from_ms(4));
        assert_eq!(t.deadline_of(3), Time::from_ms(14));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn release_of_zero_panics() {
        let t = Task::from_ms(5, 4, 3, 2, 4).unwrap();
        t.release_of(0);
    }

    #[test]
    fn fractional_ms_deadline() {
        // τ1 = (5, 2.5, 2, 2, 4) from Fig. 3 — needs sub-ms resolution.
        let t = Task::new(
            Time::from_ms(5),
            Time::from_us(2_500),
            Time::from_ms(2),
            2,
            4,
        )
        .unwrap();
        assert_eq!(t.deadline().as_ms_f64(), 2.5);
    }

    #[test]
    fn task_set_basics() {
        let ts = fig1_set();
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.task(TaskId(0)).period(), Time::from_ms(5));
        assert!(ts.get(TaskId(5)).is_none());
        assert_eq!(ts.ids().count(), 2);
        assert_eq!(ts.as_slice().len(), 2);
        assert_eq!((&ts).into_iter().count(), 2);
    }

    #[test]
    fn empty_task_set_rejected() {
        assert_eq!(TaskSet::new(vec![]), Err(ValidateTaskError::EmptyTaskSet));
    }

    #[test]
    fn utilizations() {
        let ts = fig1_set();
        assert!((ts.utilization() - 0.9).abs() < 1e-12);
        assert!((ts.mk_utilization() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn hyperperiods() {
        let ts = fig1_set();
        // k1·P1 = 20, k2·P2 = 20 → hyperperiod 20.
        assert_eq!(ts.hyperperiod(), Time::from_ms(20));
        assert_eq!(ts.hyperperiod_up_to(TaskId(0)), Time::from_ms(20));
        assert_eq!(ts.hyperperiod_up_to(TaskId(1)), Time::from_ms(20));

        // Fig. 5 set: τ1 = (10,10,3,2,3), τ2 = (15,15,8,1,2).
        let ts = TaskSet::new(vec![
            Task::from_ms(10, 10, 3, 2, 3).unwrap(),
            Task::from_ms(15, 15, 8, 1, 2).unwrap(),
        ])
        .unwrap();
        assert_eq!(ts.hyperperiod_up_to(TaskId(0)), Time::from_ms(30));
        assert_eq!(ts.hyperperiod_up_to(TaskId(1)), Time::from_ms(30));
    }

    #[test]
    fn display_forms() {
        let ts = fig1_set();
        assert_eq!(TaskId(0).to_string(), "τ1");
        assert_eq!(ts.task(TaskId(0)).to_string(), "(5ms, 4ms, 3ms, 2, 4)");
        let s = ts.to_string();
        assert!(s.contains("τ1"));
        assert!(s.contains("τ2"));
    }

    #[test]
    fn from_iterator() {
        let ts: TaskSet = vec![Task::from_ms(5, 4, 3, 2, 4).unwrap()]
            .into_iter()
            .collect();
        assert_eq!(ts.len(), 1);
    }
}
