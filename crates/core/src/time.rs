//! Integer tick time base used throughout the library.
//!
//! All scheduling arithmetic is done on integer *ticks* to keep the
//! simulator exactly deterministic. One millisecond is
//! [`TICKS_PER_MS`] = 1000 ticks, i.e. a tick is one microsecond. This is
//! fine enough to express every quantity in the paper (e.g. the deadline
//! `2.5 ms` of task τ1 in Fig. 3 is 2500 ticks) without any floating-point
//! rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of ticks in one millisecond.
pub const TICKS_PER_MS: u64 = 1_000;

/// A point in time or a span of time, measured in integer ticks.
///
/// `Time` is used both as an *instant* (time since the synchronous release
/// at 0) and as a *duration*; the scheduling literature the paper builds on
/// does the same with its `t` values, and keeping one type avoids a large
/// amount of conversion noise in the analysis code.
///
/// # Examples
///
/// ```
/// use mkss_core::time::Time;
///
/// let period = Time::from_ms(5);
/// let deadline = Time::from_us(2_500); // 2.5 ms
/// assert!(deadline < period);
/// assert_eq!(period.as_ms_f64(), 5.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The instant zero / the empty duration.
    pub const ZERO: Time = Time(0);

    /// The largest representable time. Used as "never" by the simulator.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw ticks (microseconds).
    ///
    /// ```
    /// use mkss_core::time::Time;
    /// assert_eq!(Time::from_ticks(1_000), Time::from_ms(1));
    /// ```
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Creates a time from whole milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms * 1000` overflows `u64` (≈ 584 000 years).
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * TICKS_PER_MS)
    }

    /// Creates a time from whole microseconds (identical to ticks).
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This time expressed in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_MS as f64
    }

    /// This time in whole milliseconds, rounded up — pure integer
    /// arithmetic, exact for every tick count (unlike rounding
    /// [`Time::as_ms_f64`], which loses precision past 2⁵³ ticks).
    ///
    /// ```
    /// use mkss_core::time::Time;
    /// assert_eq!(Time::from_us(1).as_ms_ceil(), 1);
    /// assert_eq!(Time::from_ms(5).as_ms_ceil(), 5);
    /// ```
    #[inline]
    pub const fn as_ms_ceil(self) -> u64 {
        self.0.div_ceil(TICKS_PER_MS)
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    ///
    /// ```
    /// use mkss_core::time::Time;
    /// assert_eq!(Time::from_ms(3).saturating_sub(Time::from_ms(5)), Time::ZERO);
    /// ```
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(t) => Some(Time(t)),
            None => None,
        }
    }

    /// Saturating addition: clamps at [`Time::MAX`].
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Checked multiplication by a scalar job count.
    #[inline]
    pub const fn checked_mul(self, rhs: u64) -> Option<Time> {
        match self.0.checked_mul(rhs) {
            Some(t) => Some(Time(t)),
            None => None,
        }
    }

    /// `ceil(self / rhs)` as a count. Used by response-time analysis for the
    /// number of releases of a task with period `rhs` in a window of length
    /// `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_ceil(self, rhs: Time) -> u64 {
        assert!(rhs.0 != 0, "division by zero duration");
        self.0.div_ceil(rhs.0)
    }

    /// `floor(self / rhs)` as a count.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_floor(self, rhs: Time) -> u64 {
        assert!(rhs.0 != 0, "division by zero duration");
        self.0 / rhs.0
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Whether this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        // mkss-lint: allow(no-unwrap-in-lib) — operator impls cannot return Result; overflow means ≈584k simulated years
        Time(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics on underflow; use [`Time::saturating_sub`] when the operands
    /// may be unordered.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        // mkss-lint: allow(no-unwrap-in-lib) — operator impls cannot return Result; underflow is documented, use saturating_sub
        Time(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        // mkss-lint: allow(no-unwrap-in-lib) — operator impls cannot return Result; job indices are horizon-bounded
        Time(self.0.checked_mul(rhs).expect("time overflow"))
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        rhs * self
    }
}

impl Div<Time> for Time {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Time) -> u64 {
        self.div_floor(rhs)
    }
}

impl Rem for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        assert!(rhs.0 != 0, "modulo by zero duration");
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "∞");
        }
        let ms = self.0 / TICKS_PER_MS;
        let frac = self.0 % TICKS_PER_MS;
        if frac == 0 {
            write!(f, "{ms}ms")
        } else {
            // Trim trailing zeros of the fractional millisecond part.
            let mut frac_str = format!("{frac:03}");
            while frac_str.ends_with('0') {
                frac_str.pop();
            }
            write!(f, "{ms}.{frac_str}ms")
        }
    }
}

/// Least common multiple of two tick counts, saturating at `u64::MAX`.
///
/// Task-set hyperperiods over random periods can exceed any practical
/// simulation horizon; saturating (rather than erroring) lets callers treat
/// "astronomical" and "infinite" uniformly and clamp to a horizon.
///
/// ```
/// use mkss_core::time::{lcm_time, Time};
/// assert_eq!(lcm_time(Time::from_ms(4), Time::from_ms(6)), Time::from_ms(12));
/// ```
pub fn lcm_time(a: Time, b: Time) -> Time {
    if a.is_zero() || b.is_zero() {
        return Time::ZERO;
    }
    let g = gcd(a.0, b.0);
    match (a.0 / g).checked_mul(b.0) {
        Some(l) => Time(l),
        None => Time::MAX,
    }
}

/// Greatest common divisor (Euclid).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(Time::from_ms(5).ticks(), 5_000);
        assert_eq!(Time::from_us(2_500).as_ms_f64(), 2.5);
        assert_eq!(Time::from_ticks(7).ticks(), 7);
        assert_eq!(Time::ZERO.ticks(), 0);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::from_ms(1).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ms(10);
        let b = Time::from_ms(3);
        assert_eq!(a + b, Time::from_ms(13));
        assert_eq!(a - b, Time::from_ms(7));
        assert_eq!(b * 4, Time::from_ms(12));
        assert_eq!(4 * b, Time::from_ms(12));
        assert_eq!(a % b, Time::from_ms(1));
        assert_eq!(a / b, 3);
    }

    #[test]
    fn add_assign_sub_assign() {
        let mut t = Time::from_ms(1);
        t += Time::from_ms(2);
        assert_eq!(t, Time::from_ms(3));
        t -= Time::from_ms(1);
        assert_eq!(t, Time::from_ms(2));
    }

    #[test]
    #[should_panic(expected = "time underflow")]
    fn sub_underflow_panics() {
        let _ = Time::from_ms(1) - Time::from_ms(2);
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(
            Time::from_ms(1).saturating_sub(Time::from_ms(2)),
            Time::ZERO
        );
        assert_eq!(
            Time::from_ms(2).saturating_sub(Time::from_ms(1)),
            Time::from_ms(1)
        );
        assert_eq!(Time::MAX.saturating_add(Time::from_ms(1)), Time::MAX);
        assert_eq!(Time::from_ms(1).checked_sub(Time::from_ms(2)), None);
        assert_eq!(
            Time::from_ms(3).checked_sub(Time::from_ms(1)),
            Some(Time::from_ms(2))
        );
        assert_eq!(Time::MAX.checked_mul(2), None);
    }

    #[test]
    fn as_ms_ceil_is_exact() {
        assert_eq!(Time::ZERO.as_ms_ceil(), 0);
        assert_eq!(Time::from_us(1).as_ms_ceil(), 1);
        assert_eq!(Time::from_us(999).as_ms_ceil(), 1);
        assert_eq!(Time::from_ms(1).as_ms_ceil(), 1);
        assert_eq!(Time::from_us(1_001).as_ms_ceil(), 2);
        // Exact where the float round-trip is not: 2^53 + 1 ticks is not
        // representable as f64, so ceil(as_ms_f64()) under-counts.
        let big = (1u64 << 53) + 1;
        assert_eq!(Time::from_ticks(big).as_ms_ceil(), big.div_ceil(1_000));
        assert_eq!(Time::MAX.as_ms_ceil(), u64::MAX.div_ceil(1_000));
    }

    #[test]
    fn div_ceil_floor() {
        let w = Time::from_ms(10);
        let p = Time::from_ms(3);
        assert_eq!(w.div_ceil(p), 4);
        assert_eq!(w.div_floor(p), 3);
        assert_eq!(Time::from_ms(9).div_ceil(p), 3);
        assert_eq!(Time::ZERO.div_ceil(p), 0);
    }

    #[test]
    fn min_max() {
        let a = Time::from_ms(1);
        let b = Time::from_ms(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sum_iterator() {
        let total: Time = [1u64, 2, 3].iter().map(|&ms| Time::from_ms(ms)).sum();
        assert_eq!(total, Time::from_ms(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_ms(5).to_string(), "5ms");
        assert_eq!(Time::from_us(2_500).to_string(), "2.5ms");
        assert_eq!(Time::from_us(2_050).to_string(), "2.05ms");
        assert_eq!(Time::ZERO.to_string(), "0ms");
        assert_eq!(Time::MAX.to_string(), "∞");
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(
            lcm_time(Time::from_ms(4), Time::from_ms(6)),
            Time::from_ms(12)
        );
        assert_eq!(lcm_time(Time::ZERO, Time::from_ms(6)), Time::ZERO);
        // Saturation on overflow.
        let big = Time::from_ticks(u64::MAX - 1);
        let coprime = Time::from_ticks(u64::MAX - 2);
        assert_eq!(lcm_time(big, coprime), Time::MAX);
    }
}
