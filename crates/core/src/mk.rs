//! The (m,k)-firm deadline model: constraints and static
//! mandatory/optional partitioning patterns.
//!
//! An (m,k) constraint requires that among **any** `k` consecutive jobs of a
//! task, at least `m` complete successfully by their deadlines
//! (Hamdaoui & Ramanathan, 1995). To *enforce* the constraint statically,
//! jobs are partitioned into mandatory and optional ones
//! (Ramanathan, 1999); the paper uses the *deeply-red* pattern
//! ([`Pattern::DeeplyRed`], Koren & Shasha, 1995) given by Eq. (1):
//!
//! ```text
//! π_ij = 1  iff  1 ≤ j mod k_i ≤ m_i       (j = 1, 2, 3, …)
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ValidateTaskError;

/// An (m,k)-firm constraint: at least `m` of any `k` consecutive jobs must
/// complete by their deadlines.
///
/// The invariant `0 < m < k` is enforced at construction (the paper's system
/// model uses the same strict form; `m = k` would be a hard real-time task
/// and `m = 0` no constraint at all).
///
/// # Examples
///
/// ```
/// use mkss_core::mk::MkConstraint;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mk = MkConstraint::new(2, 4)?;
/// assert_eq!(mk.m(), 2);
/// assert_eq!(mk.k(), 4);
/// // (m,k)-utilization weight m/k:
/// assert_eq!(mk.ratio(), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MkConstraint {
    m: u32,
    k: u32,
}

impl MkConstraint {
    /// Creates an (m,k) constraint.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateTaskError::InvalidMkPair`] unless `0 < m < k`.
    pub fn new(m: u32, k: u32) -> Result<Self, ValidateTaskError> {
        if m == 0 || m >= k {
            return Err(ValidateTaskError::InvalidMkPair { m, k });
        }
        Ok(MkConstraint { m, k })
    }

    /// Minimum number of successes per window.
    #[inline]
    pub const fn m(self) -> u32 {
        self.m
    }

    /// Window length in jobs.
    #[inline]
    pub const fn k(self) -> u32 {
        self.k
    }

    /// The ratio `m/k`, the task's weight in the (m,k)-utilization
    /// `Σ mᵢCᵢ/(kᵢPᵢ)`.
    #[inline]
    pub fn ratio(self) -> f64 {
        f64::from(self.m) / f64::from(self.k)
    }

    /// Maximum number of consecutive misses the constraint can ever absorb:
    /// `k − m`. This equals the flexibility degree of a job whose entire
    /// history window is successful.
    #[inline]
    pub const fn max_consecutive_misses(self) -> u32 {
        self.k - self.m
    }
}

/// A static mandatory/optional partitioning pattern for (m,k)-firm tasks.
///
/// Patterns classify the `j`-th job (1-based, as in the paper) of a task as
/// mandatory (`π_ij = 1`) or optional (`π_ij = 0`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Pattern {
    /// The *deeply-red* (R-)pattern of Eq. (1): the first `m` jobs of every
    /// aligned window of `k` are mandatory. All tasks are "red" together at
    /// the synchronous release, which makes this pattern the worst case for
    /// schedulability analysis (Theorem 1 relies on exactly this property).
    #[default]
    DeeplyRed,
    /// The *evenly-distributed* (E-)pattern of Ramanathan (1999):
    /// `π_ij = 1  iff  j-1 == ⌊⌈(j-1)·m/k⌉·k/m⌋` (0-based form). Mandatory
    /// jobs are spread evenly over the window. Provided for comparison and
    /// ablations; the paper's schemes use [`Pattern::DeeplyRed`].
    EvenlyDistributed,
}

impl Pattern {
    /// Whether the `j`-th job (**1-based**) of a task with constraint `mk`
    /// is mandatory under this pattern.
    ///
    /// ```
    /// use mkss_core::mk::{MkConstraint, Pattern};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mk = MkConstraint::new(2, 4)?;
    /// let mandatory: Vec<bool> =
    ///     (1..=8).map(|j| Pattern::DeeplyRed.is_mandatory(mk, j)).collect();
    /// assert_eq!(mandatory, [true, true, false, false, true, true, false, false]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `job_index` is zero (job indices are 1-based, matching the
    /// paper's `J_i1, J_i2, …` notation).
    pub fn is_mandatory(self, mk: MkConstraint, job_index: u64) -> bool {
        assert!(job_index >= 1, "job indices are 1-based");
        match self {
            Pattern::DeeplyRed => {
                let r = job_index % u64::from(mk.k());
                1 <= r && r <= u64::from(mk.m())
            }
            Pattern::EvenlyDistributed => {
                // 0-based formulation: job n (= j-1) is mandatory iff
                // n == floor(ceil(n*m/k) * k / m).
                let n = job_index - 1;
                let m = u64::from(mk.m());
                let k = u64::from(mk.k());
                let lhs = (n * m).div_ceil(k);
                n == lhs * k / m
            }
        }
    }

    /// Iterates over the 1-based indices of the mandatory jobs under this
    /// pattern, in increasing order, without end.
    ///
    /// ```
    /// use mkss_core::mk::{MkConstraint, Pattern};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mk = MkConstraint::new(2, 4)?;
    /// let first: Vec<u64> = Pattern::DeeplyRed.mandatory_indices(mk).take(5).collect();
    /// assert_eq!(first, [1, 2, 5, 6, 9]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn mandatory_indices(self, mk: MkConstraint) -> impl Iterator<Item = u64> {
        (1u64..).filter(move |&j| self.is_mandatory(mk, j))
    }

    /// Number of *mandatory* jobs among the first `count` jobs of a task
    /// under this pattern.
    ///
    /// For the deeply-red pattern this is closed-form; response-time
    /// analysis uses it as the interference bound of a higher-priority task
    /// in a level-i busy window starting at the synchronous release.
    ///
    /// ```
    /// use mkss_core::mk::{MkConstraint, Pattern};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mk = MkConstraint::new(2, 4)?;
    /// assert_eq!(Pattern::DeeplyRed.mandatory_among(mk, 6), 4); // jobs 1,2,5,6
    /// # Ok(())
    /// # }
    /// ```
    pub fn mandatory_among(self, mk: MkConstraint, count: u64) -> u64 {
        match self {
            Pattern::DeeplyRed => {
                let m = u64::from(mk.m());
                let k = u64::from(mk.k());
                let full = count / k;
                let rem = count % k;
                full * m + rem.min(m)
            }
            Pattern::EvenlyDistributed => {
                (1..=count).filter(|&j| self.is_mandatory(mk, j)).count() as u64
            }
        }
    }
}

/// A static pattern with a per-task cyclic rotation, after Quan & Hu's
/// enhanced (m,k) scheduling (the paper's reference \[13\]): rotating each
/// task's pattern start de-clusters the synchronous release and can make
/// otherwise-unschedulable sets schedulable.
///
/// Rotation preserves the (m,k) guarantee — any cyclic shift of a
/// pattern with ≥ `m` mandatory jobs in every sliding `k`-window keeps
/// that property — but it *invalidates* the synchronous-critical-instant
/// argument, so schedulability of rotated assignments must be checked
/// exactly (see `mkss_analysis::exact`).
///
/// # Examples
///
/// ```
/// use mkss_core::mk::{MkConstraint, Pattern, RotatedPattern};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mk = MkConstraint::new(2, 4)?;
/// let rot = RotatedPattern::new(Pattern::DeeplyRed, 2);
/// // Deeply-red is 1,2 mandatory per window; rotated by 2 → 3,4.
/// let flags: Vec<bool> = (1..=8).map(|j| rot.is_mandatory(mk, j)).collect();
/// assert_eq!(flags, [false, false, true, true, false, false, true, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RotatedPattern {
    /// The base pattern being rotated.
    pub base: Pattern,
    /// Cyclic forward shift in job positions (taken modulo `k`).
    pub offset: u32,
}

impl RotatedPattern {
    /// Creates a rotated pattern.
    pub fn new(base: Pattern, offset: u32) -> Self {
        RotatedPattern { base, offset }
    }

    /// The unrotated pattern.
    pub fn plain(base: Pattern) -> Self {
        RotatedPattern { base, offset: 0 }
    }

    /// Whether the `j`-th job (**1-based**) is mandatory: position
    /// `((j − 1 + offset) mod k) + 1` of the base pattern.
    ///
    /// # Panics
    ///
    /// Panics if `job_index` is zero.
    pub fn is_mandatory(self, mk: MkConstraint, job_index: u64) -> bool {
        assert!(job_index >= 1, "job indices are 1-based");
        let k = u64::from(mk.k());
        let pos = (job_index - 1 + u64::from(self.offset)) % k + 1;
        self.base.is_mandatory(mk, pos)
    }

    /// Number of mandatory jobs among the first `count` jobs.
    pub fn mandatory_among(self, mk: MkConstraint, count: u64) -> u64 {
        let k = u64::from(mk.k());
        let full = count / k;
        let mut total = full * u64::from(mk.m());
        for j in full * k + 1..=count {
            if self.is_mandatory(mk, j) {
                total += 1;
            }
        }
        total
    }
}

impl From<Pattern> for RotatedPattern {
    fn from(base: Pattern) -> Self {
        RotatedPattern::plain(base)
    }
}

/// A streaming checker that verifies the (m,k) constraint over **every**
/// sliding window of `k` consecutive job outcomes.
///
/// Feed it the outcome of each job in release order; it reports the first
/// violation. Used by the test-suite to validate whole schedules
/// (Theorem 1) and by the simulator's assertion mode.
///
/// # Examples
///
/// ```
/// use mkss_core::mk::{MkConstraint, MkMonitor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mon = MkMonitor::new(MkConstraint::new(1, 2)?);
/// assert!(mon.record(true));   // met
/// assert!(mon.record(false));  // missed — window {met, missed} is fine
/// assert!(!mon.record(false)); // window {missed, missed} violates (1,2)
/// assert!(mon.violated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MkMonitor {
    mk: MkConstraint,
    /// Ring buffer of the last `k` outcomes (`true` = met).
    window: Vec<bool>,
    /// Next write position in `window`.
    cursor: usize,
    /// Number of outcomes recorded so far.
    seen: u64,
    /// Number of `true` entries currently in the window.
    met_in_window: u32,
    /// Index (1-based) of the first job whose window violated the
    /// constraint, if any.
    first_violation: Option<u64>,
}

impl MkMonitor {
    /// Creates a monitor for the given constraint. Jobs before the first
    /// are treated as met, matching the paper's examples where the initial
    /// flexibility degree of every task is `k − m`.
    pub fn new(mk: MkConstraint) -> Self {
        MkMonitor {
            mk,
            window: vec![true; mk.k() as usize],
            cursor: 0,
            seen: 0,
            met_in_window: mk.k(),
            first_violation: None,
        }
    }

    /// The constraint being monitored.
    pub fn constraint(&self) -> MkConstraint {
        self.mk
    }

    /// Resets the monitor to its initial all-met pre-history state,
    /// keeping the window allocation. Equivalent to (but cheaper than)
    /// `*self = MkMonitor::new(self.constraint())`; used by simulation
    /// workspaces that are reused across runs.
    pub fn reset(&mut self) {
        self.window.fill(true);
        self.cursor = 0;
        self.seen = 0;
        self.met_in_window = self.mk.k();
        self.first_violation = None;
    }

    /// Records the outcome of the next job (`true` = met its deadline).
    /// Returns `false` iff this outcome completes a violating window (or a
    /// violation already occurred).
    pub fn record(&mut self, met: bool) -> bool {
        let evicted = self.window[self.cursor];
        self.window[self.cursor] = met;
        self.cursor = (self.cursor + 1) % self.window.len();
        self.seen += 1;
        if evicted {
            self.met_in_window -= 1;
        }
        if met {
            self.met_in_window += 1;
        }
        if self.met_in_window < self.mk.m() && self.first_violation.is_none() {
            self.first_violation = Some(self.seen);
        }
        self.first_violation.is_none()
    }

    /// Whether a violation has occurred.
    pub fn violated(&self) -> bool {
        self.first_violation.is_some()
    }

    /// 1-based index of the job that completed the first violating window.
    pub fn first_violation(&self) -> Option<u64> {
        self.first_violation
    }

    /// Number of outcomes recorded.
    pub fn jobs_seen(&self) -> u64 {
        self.seen
    }

    /// Number of met outcomes in the current window (counting pre-history
    /// as met while the window is not yet full).
    pub fn met_in_window(&self) -> u32 {
        self.met_in_window
    }

    /// How many further misses the current window tolerates before the
    /// (m,k) constraint is violated: `met_in_window − m`, saturating at 0.
    ///
    /// A distance of 0 means the window is deeply red — every remaining
    /// job must meet its deadline (or, if already violated, stays 0).
    pub fn distance_to_violation(&self) -> u32 {
        self.met_in_window.saturating_sub(self.mk.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constraint_validation() {
        assert!(MkConstraint::new(1, 2).is_ok());
        assert!(MkConstraint::new(19, 20).is_ok());
        assert_eq!(
            MkConstraint::new(0, 2),
            Err(ValidateTaskError::InvalidMkPair { m: 0, k: 2 })
        );
        assert_eq!(
            MkConstraint::new(2, 2),
            Err(ValidateTaskError::InvalidMkPair { m: 2, k: 2 })
        );
        assert_eq!(
            MkConstraint::new(3, 2),
            Err(ValidateTaskError::InvalidMkPair { m: 3, k: 2 })
        );
    }

    #[test]
    fn constraint_accessors() {
        let mk = MkConstraint::new(2, 5).unwrap();
        assert_eq!(mk.m(), 2);
        assert_eq!(mk.k(), 5);
        assert_eq!(mk.ratio(), 0.4);
        assert_eq!(mk.max_consecutive_misses(), 3);
    }

    #[test]
    fn deeply_red_pattern_eq1() {
        // Paper Eq. (1) with (m,k) = (2,4): jobs 1,2 mandatory; 3,4 optional.
        let mk = MkConstraint::new(2, 4).unwrap();
        let p = Pattern::DeeplyRed;
        let flags: Vec<bool> = (1..=12).map(|j| p.is_mandatory(mk, j)).collect();
        assert_eq!(
            flags,
            [true, true, false, false, true, true, false, false, true, true, false, false]
        );
    }

    #[test]
    fn deeply_red_mk_1_2() {
        // τ2 = (10,10,3,1,2) from Fig. 1: odd jobs mandatory.
        let mk = MkConstraint::new(1, 2).unwrap();
        let p = Pattern::DeeplyRed;
        assert!(p.is_mandatory(mk, 1));
        assert!(!p.is_mandatory(mk, 2));
        assert!(p.is_mandatory(mk, 3));
        assert!(!p.is_mandatory(mk, 4));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn pattern_rejects_zero_index() {
        let mk = MkConstraint::new(1, 2).unwrap();
        Pattern::DeeplyRed.is_mandatory(mk, 0);
    }

    #[test]
    fn evenly_distributed_spreads() {
        let mk = MkConstraint::new(2, 4).unwrap();
        let p = Pattern::EvenlyDistributed;
        let flags: Vec<bool> = (1..=8).map(|j| p.is_mandatory(mk, j)).collect();
        // E-pattern for (2,4): mandatory at 0-based n = 0, 2 within each window.
        assert_eq!(flags, [true, false, true, false, true, false, true, false]);
    }

    #[test]
    fn mandatory_among_closed_form_matches_naive() {
        for (m, k) in [(1u32, 2u32), (2, 4), (3, 5), (1, 7), (6, 7)] {
            let mk = MkConstraint::new(m, k).unwrap();
            for count in 0..60u64 {
                let naive = (1..=count)
                    .filter(|&j| Pattern::DeeplyRed.is_mandatory(mk, j))
                    .count() as u64;
                assert_eq!(
                    Pattern::DeeplyRed.mandatory_among(mk, count),
                    naive,
                    "(m,k)=({m},{k}), count={count}"
                );
            }
        }
    }

    #[test]
    fn every_pattern_window_satisfies_mk() {
        // Any k consecutive jobs under either pattern contain ≥ m mandatory.
        for pattern in [Pattern::DeeplyRed, Pattern::EvenlyDistributed] {
            for (m, k) in [(1u32, 2u32), (2, 4), (3, 5), (2, 20), (19, 20)] {
                let mk = MkConstraint::new(m, k).unwrap();
                for start in 1..=(3 * u64::from(k)) {
                    let count = (start..start + u64::from(k))
                        .filter(|&j| pattern.is_mandatory(mk, j))
                        .count() as u32;
                    assert!(
                        count >= m,
                        "{pattern:?} (m,k)=({m},{k}) window at {start} has only {count}"
                    );
                }
            }
        }
    }

    #[test]
    fn monitor_detects_violation() {
        let mut mon = MkMonitor::new(MkConstraint::new(2, 3).unwrap());
        assert!(mon.record(true));
        assert!(mon.record(true));
        assert!(mon.record(false)); // window T T F: 2 met, fine
        assert!(!mon.record(false)); // window T F F: 1 met < 2
        assert!(mon.violated());
        assert_eq!(mon.first_violation(), Some(4));
        assert_eq!(mon.jobs_seen(), 4);
        // Stays violated.
        assert!(!mon.record(true));
    }

    #[test]
    fn monitor_initial_history_counts_as_met() {
        // First job may miss immediately when m < k.
        let mut mon = MkMonitor::new(MkConstraint::new(1, 2).unwrap());
        assert!(mon.record(false));
        assert!(!mon.violated());
        assert_eq!(mon.met_in_window(), 1);
    }

    #[test]
    fn monitor_all_met_never_violates() {
        let mut mon = MkMonitor::new(MkConstraint::new(3, 5).unwrap());
        for _ in 0..100 {
            assert!(mon.record(true));
        }
        assert!(!mon.violated());
        assert_eq!(mon.met_in_window(), 5);
    }

    #[test]
    fn distance_to_violation_tracks_window_headroom() {
        let mut mon = MkMonitor::new(MkConstraint::new(2, 4).unwrap());
        assert_eq!(mon.distance_to_violation(), 2); // fresh window: k met
        mon.record(false);
        assert_eq!(mon.distance_to_violation(), 1);
        mon.record(false);
        assert_eq!(mon.distance_to_violation(), 0); // deeply red
        assert!(!mon.violated());
        mon.record(false); // third miss in the window: violation
        assert!(mon.violated());
        assert_eq!(mon.distance_to_violation(), 0); // saturates, no underflow
    }

    #[test]
    fn rotation_shifts_positions() {
        let mk = MkConstraint::new(2, 4).unwrap();
        let rot = RotatedPattern::new(Pattern::DeeplyRed, 1);
        // offset 1: positions 2,3 of each window… wait: job j maps to
        // position ((j-1+1) mod 4)+1, so job 1 → pos 2 (mandatory),
        // job 2 → pos 3 (optional), job 4 → pos 1 (mandatory).
        let flags: Vec<bool> = (1..=4).map(|j| rot.is_mandatory(mk, j)).collect();
        assert_eq!(flags, [true, false, false, true]);
        // Offset k is identity.
        let id = RotatedPattern::new(Pattern::DeeplyRed, 4);
        for j in 1..=12 {
            assert_eq!(
                id.is_mandatory(mk, j),
                Pattern::DeeplyRed.is_mandatory(mk, j)
            );
        }
        // From impl.
        let plain: RotatedPattern = Pattern::DeeplyRed.into();
        assert_eq!(plain.offset, 0);
    }

    #[test]
    fn rotation_preserves_window_guarantee() {
        for (m, k) in [(1u32, 2u32), (2, 4), (3, 5), (2, 7)] {
            let mk = MkConstraint::new(m, k).unwrap();
            for offset in 0..k {
                let rot = RotatedPattern::new(Pattern::DeeplyRed, offset);
                for start in 1..=(3 * u64::from(k)) {
                    let count = (start..start + u64::from(k))
                        .filter(|&j| rot.is_mandatory(mk, j))
                        .count() as u32;
                    assert!(
                        count >= m,
                        "offset {offset} window at {start}: {count} < {m}"
                    );
                }
            }
        }
    }

    #[test]
    fn rotated_mandatory_among_matches_naive() {
        let mk = MkConstraint::new(2, 5).unwrap();
        for offset in 0..5 {
            let rot = RotatedPattern::new(Pattern::DeeplyRed, offset);
            for count in 0..40 {
                let naive = (1..=count).filter(|&j| rot.is_mandatory(mk, j)).count() as u64;
                assert_eq!(rot.mandatory_among(mk, count), naive);
            }
        }
    }

    proptest! {
        /// The monitor agrees with a naive "check every window" oracle.
        #[test]
        fn monitor_matches_naive_oracle(
            m in 1u32..6,
            extra in 1u32..6,
            outcomes in proptest::collection::vec(any::<bool>(), 0..80),
        ) {
            let k = m + extra;
            let mk = MkConstraint::new(m, k).unwrap();
            let mut mon = MkMonitor::new(mk);
            // Prepend k implicit "met" outcomes, as the monitor does.
            let mut all: Vec<bool> = vec![true; k as usize];
            let mut naive_first: Option<u64> = None;
            for (idx, &o) in outcomes.iter().enumerate() {
                all.push(o);
                mon.record(o);
                let window = &all[all.len() - k as usize..];
                let met = window.iter().filter(|&&b| b).count() as u32;
                if met < m && naive_first.is_none() {
                    naive_first = Some(idx as u64 + 1);
                }
            }
            prop_assert_eq!(mon.first_violation(), naive_first);
        }

        /// Deeply-red: every sliding window of k jobs has >= m mandatory,
        /// and aligned windows have exactly m.
        #[test]
        fn deeply_red_window_counts(m in 1u32..10, extra in 1u32..10) {
            let k = m + extra;
            let mk = MkConstraint::new(m, k).unwrap();
            // Aligned windows: jobs (w*k+1)..=(w*k+k) contain exactly m.
            for w in 0..4u64 {
                let count = (w * u64::from(k) + 1..=(w + 1) * u64::from(k))
                    .filter(|&j| Pattern::DeeplyRed.is_mandatory(mk, j))
                    .count() as u32;
                prop_assert_eq!(count, m);
            }
        }

        /// E-pattern places exactly m mandatory jobs in each aligned window.
        #[test]
        fn evenly_distributed_density(m in 1u32..10, extra in 1u32..10) {
            let k = m + extra;
            let mk = MkConstraint::new(m, k).unwrap();
            let count = (1..=u64::from(k))
                .filter(|&j| Pattern::EvenlyDistributed.is_mandatory(mk, j))
                .count() as u32;
            prop_assert_eq!(count, m);
        }
    }
}
