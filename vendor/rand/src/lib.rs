//! Offline in-tree subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), and [`SeedableRng`] (`from_seed`,
//! `seed_from_u64` with the upstream SplitMix64 seed expansion). The
//! distributions are uniform via rejection sampling, matching upstream
//! semantics (every value in the range is possible, none outside it) but
//! not upstream bit-streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A seedable RNG, reproducible from a byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The byte-seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it with SplitMix64 into a
    /// full byte seed exactly as upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 (same constants as rand_core's default impl).
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types drawable uniformly from their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform integer in `[0, span)` by rejection sampling (span ≥ 1; a span
/// of 0 means the full 2^64 inclusive range).
fn uniform_u128(rng: &mut (impl RngCore + ?Sized), span: u128) -> u64 {
    debug_assert!(span >= 1);
    if span > u64::MAX as u128 {
        return rng.next_u64();
    }
    let span = span as u64;
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Widening-multiply rejection (Lemire); unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = (
            ((v as u128 * span as u128) >> 64) as u64,
            (v as u128 * span as u128) as u64,
        );
        if lo <= zone {
            return hi;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::draw(self) < p
    }

    /// Draws a value from the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` placeholder module for API parity.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..2000 {
            let a: u64 = rng.gen_range(5..50);
            assert!((5..50).contains(&a));
            let b: u32 = rng.gen_range(2..=20);
            assert!((2..=20).contains(&b));
            let c: f64 = rng.gen_range(0.05..1.0);
            assert!((0.05..1.0).contains(&c));
            let d: usize = rng.gen_range(0..7);
            assert!(d < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = Counter(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
