//! Offline in-tree subset of the `proptest` API.
//!
//! Implements the slice this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, integer-range and
//! `any::<bool>()` strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are
//! drawn from a ChaCha8 stream seeded from the test's name, so every run
//! explores the same inputs (fully deterministic, no persistence files).
//! Unlike upstream there is no shrinking: a failure reports the exact
//! inputs of the failing case instead.

#![forbid(unsafe_code)]

/// Strategies: sources of random test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: Clone + rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rand::Rng::gen_range(rng.rng(), self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Clone,
        RangeInclusive<T>: Clone + rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rand::Rng::gen_range(rng.rng(), self.clone())
        }
    }

    /// Types with a canonical whole-domain strategy ([`crate::prelude::any`]).
    pub trait Arbitrary: Sized {
        /// Draws one value from the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::RngCore::next_u32(rng.rng()) & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::RngCore::next_u32(rng.rng()) as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::RngCore::next_u32(rng.rng())
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::RngCore::next_u64(rng.rng())
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: `size.start..size.end` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng.rng(), self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and case plumbing.
pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed case.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejected (assume-filtered) case.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Result type the `proptest!` body is wrapped into.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test RNG.
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// RNG derived from the test's fully-qualified name; every run of
        /// the same test explores the same case sequence.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(h))
        }

        /// The underlying RNG.
        pub fn rng(&mut self) -> &mut ChaCha8Rng {
            &mut self.0
        }
    }

    /// Drives one test: draws cases until `config.cases` pass, skipping
    /// rejected cases (bounded so a too-strict `prop_assume!` terminates).
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting its inputs.
    pub fn run(name: &str, config: &Config, mut case: impl FnMut(&mut TestRng) -> CaseOutcome) {
        let mut rng = TestRng::from_name(name);
        let mut passed: u32 = 0;
        let max_attempts = config.cases.saturating_mul(20).max(100);
        for _ in 0..max_attempts {
            if passed >= config.cases {
                return;
            }
            match case(&mut rng) {
                CaseOutcome::Pass => passed += 1,
                CaseOutcome::Reject => {}
                CaseOutcome::Fail { inputs, message } => {
                    panic!("proptest `{name}` failed: {message}\n  inputs: {inputs}");
                }
            }
        }
        assert!(
            passed > 0,
            "proptest `{name}`: every generated case was rejected by prop_assume!"
        );
    }

    /// Outcome of a single generated case.
    pub enum CaseOutcome {
        /// The case passed.
        Pass,
        /// `prop_assume!` filtered the case out.
        Reject,
        /// The case failed.
        Fail {
            /// Rendered `name = value` pairs for the case's inputs.
            inputs: String,
            /// The failure message.
            message: String,
        },
    }
}

/// Everything `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    use std::marker::PhantomData;

    /// The whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(PhantomData)
    }
}

/// Defines deterministic property tests; see the crate docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr);) => {};
    (@cfg ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run(full_name, &config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = || {
                    let mut s = String::new();
                    $(
                        if !s.is_empty() { s.push_str(", "); }
                        s.push_str(&format!("{} = {:?}", stringify!($arg), &$arg));
                    )+
                    s
                };
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __result {
                    Ok(()) => $crate::test_runner::CaseOutcome::Pass,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        $crate::test_runner::CaseOutcome::Reject
                    }
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        $crate::test_runner::CaseOutcome::Fail {
                            inputs: __inputs(),
                            message,
                        }
                    }
                }
            });
        }
        $crate::__proptest_impl!(@cfg ($config); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(a in 3u32..9, b in 0u64..=5, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 5);
            let _ = flag;
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let draw = || {
            let mut rng = TestRng::from_name("fixed");
            (0..10)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_propagate() {
        use crate::strategy::Strategy;
        use crate::test_runner::{self, CaseOutcome, Config};
        test_runner::run("always_fails", &Config::with_cases(4), |rng| {
            let x = (0u32..10).generate(rng);
            let result: TestCaseResult = (|| {
                prop_assert!(x > 100);
                Ok(())
            })();
            match result {
                Ok(()) => CaseOutcome::Pass,
                Err(TestCaseError::Reject(_)) => CaseOutcome::Reject,
                Err(TestCaseError::Fail(message)) => CaseOutcome::Fail {
                    inputs: format!("x = {x:?}"),
                    message,
                },
            }
        });
    }
}
