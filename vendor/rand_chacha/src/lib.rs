//! Offline in-tree `ChaCha8Rng`: the real ChaCha stream cipher with 8
//! rounds (IETF variant, 32-byte key, zero nonce, 64-bit block counter),
//! implementing the vendored `rand` traits. Fully deterministic given the
//! seed; `Clone` clones the exact stream position.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // nonce words 14/15 stay zero.
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..19 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_rfc_structure_nonzero_and_mixed() {
        // Not a published ChaCha8 vector (those use nonzero nonces), but
        // the block function must diffuse: two consecutive blocks differ
        // in many words, and a one-bit seed change flips the stream.
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let block1: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(block1, block2);
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut b = ChaCha8Rng::from_seed(seed);
        assert_ne!(block1[0], b.next_u32());
    }

    #[test]
    fn uniformish_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
