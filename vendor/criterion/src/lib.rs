//! Offline in-tree subset of the `criterion` benchmarking API.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `BenchmarkGroup`, and `Bencher::iter` with simple wall-clock timing:
//! each benchmark is warmed up once, then run for `sample_size` samples,
//! and the median/min/max per-iteration times are printed to stdout. No
//! statistics engine, plots, or persistence — just honest timings so
//! `cargo bench` works offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, 100, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        let _ = routine();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Upstream-compatible `--test` mode: `cargo bench -- --test` runs every
/// benchmark exactly once as a smoke test instead of timing it.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let sample_size = if test_mode() { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if test_mode() {
        println!("{id:<40} ok (test mode)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples: bencher.iter was not called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{id:<40} median {:>12}   min {:>12}   max {:>12}   ({} samples)",
        format_duration(median),
        format_duration(min),
        format_duration(max),
        sorted.len()
    );
}

/// Re-export of `std::hint::black_box` for API parity with upstream.
pub use std::hint::black_box;

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_function() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(ran, 4);
    }
}
