//! Offline in-tree subset of `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of serde it uses: `#[derive(Serialize, Deserialize)]` on
//! concrete (non-generic) structs and enums, serialized through the
//! JSON-shaped [`Value`] model that the sibling `serde_json` crate
//! renders and parses. The trait *signatures* keep serde's shape
//! (`Serialize`, `Deserialize<'de>`) so generic bounds like
//! `T: serde::Serialize + for<'de> serde::Deserialize<'de>` compile
//! unchanged.
//!
//! Supported container attributes: `#[serde(transparent)]`. Supported
//! field attributes: `#[serde(default)]`, `#[serde(skip)]`,
//! `#[serde(skip_serializing_if = "path")]`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (unsigned, signed, or floating).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving 64-bit integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, found Y" while deserializing `ty`.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        Error::custom(format!("{ty}: expected {what}, found {}", found.kind()))
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("{ty}: missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself to a [`Value`].
pub trait Serialize {
    /// Lowers `self` to the data model.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`]. The `'de` lifetime exists for
/// signature compatibility with upstream serde bounds.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `value`'s shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::U64(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::Number(Number::I64(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(Error::expected("unsigned integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::I64(v))
                } else {
                    Value::Number(Number::U64(v as u64))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::U64(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::Number(Number::I64(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(Error::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::F64(x)) => Ok(*x as $t),
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    Value::Number(Number::I64(n)) => Ok(*n as $t),
                    other => Err(Error::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::expected("single-char string", "char", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", "fixed-size array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        <[T; N]>::try_from(parsed).map_err(|_| Error::custom("array length mismatch after parse"))
    }
}

/// A map key must lower to a string (unit enum variants and strings do;
/// integers are stringified like serde_json does).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(Number::U64(n)) => n.to_string(),
        Value::Number(Number::I64(n)) => n.to_string(),
        other => panic!("unsupported map key type (serialized as {})", other.kind()),
    }
}

fn key_from_string<'de, K: Deserialize<'de>>(key: &str) -> Result<K, Error> {
    K::from_value(&Value::String(key.to_owned())).or_else(|string_err| {
        // Integer keys arrive as strings in JSON; retry numerically.
        if let Ok(n) = key.parse::<u64>() {
            return K::from_value(&Value::Number(Number::U64(n)));
        }
        if let Ok(n) = key.parse::<i64>() {
            return K::from_value(&Value::Number(Number::I64(n)));
        }
        Err(string_err)
    })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap", value))?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::expected("object", "HashMap", value))?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", "tuple", value))?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", "()", other)),
        }
    }
}

/// Support code referenced by the derive-generated impls. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks a field up by name; a missing field deserializes from
    /// `Null` so that `Option` fields default to `None`.
    pub fn get_field<'de, T: Deserialize<'de>>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
            }
            None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(ty, name)),
        }
    }

    /// Like [`get_field`], but a missing (or null) field falls back to
    /// `Default::default()` — the `#[serde(default)]` behavior.
    pub fn get_field_or_default<'de, T: Deserialize<'de> + Default>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) if *v != Value::Null => {
                T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
            }
            _ => Ok(T::default()),
        }
    }
}

/// `serde::de` shim: re-exports the error type under its upstream path.
pub mod de {
    pub use super::Error;
}

/// `serde::ser` shim: re-exports the error type under its upstream path.
pub mod ser {
    pub use super::Error;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::Number(Number::U64(3))).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "b".to_owned());
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Object(vec![("2".into(), Value::String("b".into()))])
        );
        let back: BTreeMap<u32, String> = BTreeMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn arrays_fixed_size() {
        let a = [1u8, 2, 3];
        let v = a.to_value();
        let back: [u8; 3] = <[u8; 3]>::from_value(&v).unwrap();
        assert_eq!(back, a);
        assert!(<[u8; 2]>::from_value(&v).is_err());
    }
}
