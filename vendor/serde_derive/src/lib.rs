//! Offline in-tree `#[derive(Serialize, Deserialize)]` for the vendored
//! serde subset. No syn/quote: the item is parsed directly from the
//! `proc_macro` token stream and the impls are emitted as source text.
//!
//! Supported shapes (everything this workspace derives on):
//! - non-generic structs: named, tuple (1-field treated as transparent
//!   newtype, n-field as array), unit
//! - non-generic enums: unit variants (externally tagged as strings),
//!   newtype variants and struct variants (single-key objects)
//! - container attr `#[serde(transparent)]`; field/variant attrs
//!   `#[serde(default)]`, `#[serde(skip)]`, `#[serde(rename = "...")]`,
//!   `#[serde(skip_serializing_if = "path")]`

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive emitted invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Attrs {
    default_: bool,
    skip: bool,
    transparent: bool,
    rename: Option<String>,
    skip_serializing_if: Option<String>,
}

enum Fields {
    Unit,
    /// Tuple fields; only count and per-field attrs matter.
    Tuple(Vec<Attrs>),
    Named(Vec<(String, Attrs)>),
}

struct Variant {
    name: String,
    attrs: Attrs,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: Attrs,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    /// Consumes leading attributes, folding `#[serde(...)]` ones into the
    /// returned [`Attrs`]; all others (doc comments, `#[repr]`, remaining
    /// derives) are discarded.
    fn take_attrs(&mut self) -> Result<Attrs, String> {
        let mut attrs = Attrs::default();
        while self.at_punct('#') {
            self.bump();
            // `#![...]` inner attrs can't appear here; expect `[...]`.
            let group = match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("expected attribute brackets, found {other:?}")),
            };
            let mut inner = Cursor::new(group.stream());
            if inner.at_ident("serde") {
                inner.bump();
                let args = match inner.bump() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    other => return Err(format!("malformed #[serde] attr: {other:?}")),
                };
                parse_serde_args(&mut Cursor::new(args.stream()), &mut attrs)?;
            }
        }
        Ok(attrs)
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in path)` if present.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.bump();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.bump();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected {what}, found {other:?}")),
        }
    }

    /// Skips a type (or expression) up to a top-level comma or the end of
    /// the stream; the comma itself is consumed. Angle brackets are
    /// tracked so commas inside generics don't terminate early.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }
}

fn parse_serde_args(cur: &mut Cursor, attrs: &mut Attrs) -> Result<(), String> {
    while cur.peek().is_some() {
        let key = cur.expect_ident("serde attribute name")?;
        let value = if cur.at_punct('=') {
            cur.bump();
            match cur.bump() {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_owned())
                }
                other => return Err(format!("expected literal after `{key} =`, found {other:?}")),
            }
        } else {
            None
        };
        match key.as_str() {
            "default" => attrs.default_ = true,
            "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
            "transparent" => attrs.transparent = true,
            "rename" => attrs.rename = value,
            "skip_serializing_if" => attrs.skip_serializing_if = value,
            other => return Err(format!("unsupported serde attribute `{other}`")),
        }
        if cur.at_punct(',') {
            cur.bump();
        }
    }
    Ok(())
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<(String, Attrs)>, String> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.take_attrs()?;
        cur.skip_visibility();
        let name = cur.expect_ident("field name")?;
        if !cur.at_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        cur.bump();
        cur.skip_until_comma();
        fields.push((name, attrs));
    }
    Ok(fields)
}

fn parse_tuple_fields(group: TokenStream) -> Result<Vec<Attrs>, String> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.take_attrs()?;
        cur.skip_visibility();
        cur.skip_until_comma();
        fields.push(attrs);
    }
    Ok(fields)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.take_attrs()?;
        let name = cur.expect_ident("variant name")?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream())?;
                cur.bump();
                Fields::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.bump();
                Fields::Named(fields)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        cur.skip_until_comma();
        variants.push(Variant {
            name,
            attrs,
            fields,
        });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let attrs = cur.take_attrs()?;
    cur.skip_visibility();
    let kind = cur.expect_ident("`struct` or `enum`")?;
    let name = cur.expect_ident("item name")?;
    if cur.at_punct('<') {
        return Err(format!(
            "vendored serde_derive does not support generics (on `{name}`)"
        ));
    }
    let shape = match kind.as_str() {
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(parse_tuple_fields(g.stream())?))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive on `{other}` items")),
    };
    Ok(Item { name, attrs, shape })
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn wire_name(declared: &str, attrs: &Attrs) -> String {
    attrs.rename.clone().unwrap_or_else(|| declared.to_owned())
}

/// Emits `entries.push(...)` statements for named fields; `access` maps a
/// field name to the expression reaching it (e.g. `&self.a` or a match
/// binding `a`).
fn ser_named_entries(fields: &[(String, Attrs)], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for (name, attrs) in fields {
        if attrs.skip {
            continue;
        }
        let expr = access(name);
        let push = format!(
            "entries.push(({:?}.to_string(), serde::Serialize::to_value({expr})));\n",
            wire_name(name, attrs)
        );
        if let Some(pred) = &attrs.skip_serializing_if {
            out.push_str(&format!("if !{pred}({expr}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "serde::Value::Null".to_owned(),
        Shape::Struct(Fields::Tuple(fields)) if fields.len() == 1 || item.attrs.transparent => {
            "serde::Serialize::to_value(&self.0)".to_owned()
        }
        Shape::Struct(Fields::Tuple(fields)) => {
            let items: Vec<String> = (0..fields.len())
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) if item.attrs.transparent => {
            let inner = &fields.first().expect("transparent struct has a field").0;
            format!("serde::Serialize::to_value(&self.{inner})")
        }
        Shape::Struct(Fields::Named(fields)) => {
            format!(
                "let mut entries: Vec<(String, serde::Value)> = Vec::new();\n{}\nserde::Value::Object(entries)",
                ser_named_entries(fields, |f| format!("&self.{f}"))
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = wire_name(&v.name, &v.attrs);
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::String({tag:?}.to_string()),\n"
                    )),
                    Fields::Tuple(fields) if fields.len() == 1 => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => serde::Value::Object(vec![({tag:?}.to_string(), serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Fields::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serde::Value::Object(vec![({tag:?}.to_string(), serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|(f, _)| f.clone()).collect();
                        let entries = ser_named_entries(fields, |f| f.to_owned());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut entries: Vec<(String, serde::Value)> = Vec::new();\n{entries}\nserde::Value::Object(vec![({tag:?}.to_string(), serde::Value::Object(entries))])\n}},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Emits `field: <getter>(...)` initializers for a named-fields body read
/// from object entries bound as `entries`.
fn de_named_inits(fields: &[(String, Attrs)], ty: &str) -> String {
    let mut out = String::new();
    for (name, attrs) in fields {
        if attrs.skip {
            out.push_str(&format!("{name}: Default::default(),\n"));
            continue;
        }
        let getter = if attrs.default_ {
            "serde::__private::get_field_or_default"
        } else {
            "serde::__private::get_field"
        };
        out.push_str(&format!(
            "{name}: {getter}(entries, {:?}, {ty:?})?,\n",
            wire_name(name, attrs)
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("{{ let _ = value; Ok({name}) }}"),
        Shape::Struct(Fields::Tuple(fields)) if fields.len() == 1 || item.attrs.transparent => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::Struct(Fields::Tuple(fields)) => {
            let n = fields.len();
            let inits: Vec<String> = (0..n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| serde::Error::expected(\"array\", {name:?}, value))?;\n\
                 if items.len() != {n} {{ return Err(serde::Error::custom(format!(\"{name}: expected {n} elements, found {{}}\", items.len()))); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) if item.attrs.transparent => {
            let inner = &fields.first().expect("transparent struct has a field").0;
            format!("Ok({name} {{ {inner}: serde::Deserialize::from_value(value)? }})")
        }
        Shape::Struct(Fields::Named(fields)) => {
            format!(
                "let entries = value.as_object().ok_or_else(|| serde::Error::expected(\"object\", {name:?}, value))?;\n\
                 Ok({name} {{\n{}\n}})",
                de_named_inits(fields, name)
            )
        }
        Shape::Enum(variants) => {
            let mut string_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let tag = wire_name(&v.name, &v.attrs);
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        string_arms.push_str(&format!("{tag:?} => Ok({name}::{vname}),\n"))
                    }
                    Fields::Tuple(fields) if fields.len() == 1 => tagged_arms.push_str(&format!(
                        "{tag:?} => Ok({name}::{vname}(serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(fields) => {
                        let n = fields.len();
                        let inits: Vec<String> = (0..n)
                            .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{\n\
                             let items = inner.as_array().ok_or_else(|| serde::Error::expected(\"array\", {name:?}, inner))?;\n\
                             if items.len() != {n} {{ return Err(serde::Error::custom(format!(\"{name}::{vname}: expected {n} elements, found {{}}\", items.len()))); }}\n\
                             Ok({name}::{vname}({}))\n}}\n",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{\n\
                             let entries = inner.as_object().ok_or_else(|| serde::Error::expected(\"object\", {name:?}, inner))?;\n\
                             Ok({name}::{vname} {{\n{}\n}})\n}}\n",
                            de_named_inits(fields, name)
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 serde::Value::String(s) => match s.as_str() {{\n\
                 {string_arms}\
                 other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 }},\n\
                 serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(serde::Error::expected(\"variant string or single-key object\", {name:?}, other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
