//! Offline in-tree subset of `serde_json`: renders and parses JSON text
//! against the vendored serde [`Value`] model. Finite `f64` values use
//! Rust's shortest-roundtrip formatting, so serialize→parse is exact;
//! non-finite floats serialize as `null` (as upstream does).

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};

pub use serde::Error;

/// `serde_json::Result`, aliased to the vendored error.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the supported data model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as pretty JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the supported data model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if !v.is_finite() => out.push_str("null"),
        Number::F64(v) => {
            // `{:?}` is Rust's shortest round-trip float formatting and
            // always includes a `.0` or exponent, keeping it a JSON float.
            out.push_str(&format!("{v:?}"));
        }
    }
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value_pretty(out: &mut String, value: &Value, depth: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, v, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(Error::custom(format!(
                    "expected object key at byte {}",
                    self.pos
                )));
            }
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        let number = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            let _ = stripped;
            match text.parse::<i64>() {
                Ok(v) => Number::I64(v),
                Err(_) => Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::U64(v),
                Err(_) => Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn float_exact_roundtrip() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 6.02e23, -0.0, 123456.789012345] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn nested_structures() {
        let json = r#"{ "a": [1, 2.5, "x\n", null], "b": { "c": true } }"#;
        let v = parse_value(json).unwrap();
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v);
            s
        };
        assert_eq!(compact, r#"{"a":[1,2.5,"x\n",null],"b":{"c":true}}"#);
        let re = parse_value(&compact).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn string_escapes() {
        let v = parse_value(r#""Aé😀\t""#).unwrap();
        assert_eq!(v, Value::String("Aé😀\t".to_owned()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }

    #[test]
    fn pretty_shape() {
        let v = parse_value(r#"{"a":[1],"b":{}}"#).unwrap();
        let mut s = String::new();
        write_value_pretty(&mut s, &v, 0);
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }
}
