//! A miniature of the paper's Figure 6 evaluation, runnable in seconds:
//! random task sets per (m,k)-utilization bucket, three schemes, three
//! fault scenarios, energies normalized to `MKSS_ST`.
//!
//! For the full-size experiment use the harness binary:
//! `cargo run --release -p mkss-bench --bin fig6`.
//!
//! ```text
//! cargo run --release --example evaluation_sweep
//! ```

use std::sync::Arc;

use mkss::prelude::*;
use mkss_bench::experiment::{run_experiment_observed, ExperimentConfig, HarnessObs, Scenario};
use mkss_bench::table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // MKSS_LOG=summary aggregates engine events across the whole sweep and
    // prints the counter table at the end; MKSS_LOG=events additionally
    // streams live per-scenario progress lines on stderr.
    let log = LogLevel::from_env()?;
    let registry = log.enabled().then(|| Arc::new(Registry::new(1)));
    let progress = (log == LogLevel::Events).then(|| Arc::new(Reporter::stderr()));
    for scenario in Scenario::ALL {
        let mut config = ExperimentConfig::fig6(scenario);
        // Scaled down for example speed; the fig6 binary uses 20 sets per
        // bucket over [0.1, 0.9) with 1 s horizons.
        config.plan.sets_per_bucket = 5;
        config.plan.from = 0.2;
        config.plan.to = 0.8;
        config.horizon = Time::from_ms(400);
        let obs = HarnessObs {
            registry: registry.clone(),
            progress: progress.clone(),
            label: format!("sweep {}", scenario.id()),
        };
        let result = run_experiment_observed(&config, 0, &obs);
        println!("{}", table::render(&result));
        let max_reduction = result
            .max_reduction_pct(PolicyKind::Selective, PolicyKind::DualPriority)
            .map_or("n/a".to_string(), |pct| format!("{pct:.1}%"));
        println!(
            "selective vs dp: max reduction {}, mean normalized {:.3} vs {:.3}\n",
            max_reduction,
            result.mean_normalized(PolicyKind::Selective),
            result.mean_normalized(PolicyKind::DualPriority),
        );
    }
    if let Some(registry) = &registry {
        print!("{}", MetricsDoc::new(registry.snapshot()).render_table());
    }
    Ok(())
}
