//! Walks through the backup release postponement analysis of Section IV
//! (Definitions 2–5) on the paper's Fig. 5 example:
//! τ1 = (10,10,3,2,3), τ2 = (15,15,8,1,2) give θ1 = 7 and θ2 = 4, far
//! beyond τ2's promotion time Y2 = 1.
//!
//! ```text
//! cargo run --example postponement
//! ```

use mkss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = TaskSet::new(vec![
        Task::from_ms(10, 10, 3, 2, 3)?,
        Task::from_ms(15, 15, 8, 1, 2)?,
    ])?;
    println!("{ts}");

    let post = postponement_intervals(&ts, PostponeConfig::default())?;
    println!("per-task analysis (deeply-red pattern):");
    for (id, task) in ts.iter() {
        println!(
            "  {id}: Y = {} (promotion, Eq. 2), θ = {} (Defs. 2–5), raw inspecting-point θ = {:?}",
            post.promotion[id.0], post.theta[id.0], post.raw_theta[id.0],
        );
        let jobs = ts.hyperperiod_up_to(id).div_floor(task.period());
        for j in 1..=jobs {
            if Pattern::DeeplyRed.is_mandatory(task.mk(), j) {
                println!(
                    "    backup J'{},{j}: release {} → postponed to {} (deadline {})",
                    id.0 + 1,
                    task.release_of(j),
                    post.postponed_release(&ts, id, j),
                    task.deadline_of(j),
                );
            }
        }
    }

    // Show the resulting backup schedule on the spare processor under
    // MKSS_selective with a primary that never cancels (force the worst
    // case by failing every main copy with transient faults).
    println!("\nworst case: every main copy transient-faults, backups must complete:");
    let config = SimConfig::builder()
        .horizon_ms(30)
        .active_only()
        .faults(FaultConfig::transient(1e6, 1)) // every execution faults
        .build();
    let report = simulate(&ts, &mut MkssSt::new(), &config);
    print!(
        "{}",
        report
            .trace
            .expect("trace")
            .render_gantt_ms(Time::from_ms(30))
    );
    println!(
        "note: with every copy faulting, both copies of every job fail — the monitor \
         reports {} violations (this run demonstrates the schedule, not the guarantee).",
        report.violations.len()
    );
    Ok(())
}
