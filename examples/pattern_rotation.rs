//! Pattern rotation (Quan & Hu, the paper's reference [13]) rescuing a
//! task set the deeply-red pattern cannot schedule, end to end: search,
//! exact proof, and a standby-sparing simulation with the (m,k) monitor.
//!
//! ```text
//! cargo run --example pattern_rotation
//! ```

use mkss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The deeply-red clusters of these two tasks collide at t = 0:
    // τ2's first mandatory job (C = 3, D = 6) sits behind τ1's two
    // clustered 2 ms jobs and misses.
    let ts = TaskSet::new(vec![
        Task::from_ms(4, 4, 2, 2, 3)?,
        Task::from_ms(6, 6, 3, 1, 2)?,
    ])?;
    println!("{ts}");
    println!(
        "deeply-red RTA schedulable: {}",
        is_schedulable_r_pattern(&ts)
    );

    let assignment = find_rotation(&ts, RotationConfig::default()).expect("hyperperiod is tiny");
    println!(
        "rotation search: provably schedulable = {}",
        assignment.schedulable()
    );
    for (i, p) in assignment.patterns.iter().enumerate() {
        println!("  τ{}: offset {}", i + 1, p.offset);
    }

    // Run both on the engine over several hyperperiods.
    let horizon = ts.hyperperiod() * 8;
    println!("\ndeeply-red on the engine:");
    let red = simulate(&ts, &mut MkssSt::new(), &SimConfig::active_only(horizon));
    println!(
        "  met {} / missed {} ((m,k) assured: {})",
        red.stats.met,
        red.stats.missed,
        red.mk_assured()
    );

    println!("rotated assignment on the engine:");
    let mut policy = MkssStRotated::new(assignment.patterns.clone());
    let rot = simulate(&ts, &mut policy, &SimConfig::active_only(horizon));
    println!(
        "  met {} / missed {} ((m,k) assured: {})",
        rot.stats.met,
        rot.stats.missed,
        rot.mk_assured()
    );
    print!(
        "{}",
        rot.trace
            .as_ref()
            .expect("trace")
            .render_gantt_ms(ts.hyperperiod())
    );
    Ok(())
}
