//! The DVS extension in action: sweep the main-copy speed and watch the
//! classic energy trade-off — slower mains save `s²` dynamic energy but
//! finish later, so θ-postponed backups overlap more before they can be
//! canceled.
//!
//! ```text
//! cargo run --example dvs_extension
//! ```

use mkss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = TaskSet::new(vec![
        Task::from_ms(20, 20, 3, 1, 2)?,
        Task::from_ms(30, 30, 4, 2, 3)?,
        Task::from_ms(40, 40, 5, 1, 3)?,
    ])?;
    println!("{ts}");
    let horizon = Time::from_ms(1_200);
    let config = SimConfig::active_only(horizon);

    let auto = MkssDpDvs::new(&ts)?;
    println!(
        "lowest feasible main speed: {}.{:03} of full\n",
        auto.speed_permil() / 1000,
        auto.speed_permil() % 1000
    );

    println!(
        "{:>8} {:>14} {:>10} {:>10}",
        "speed", "active energy", "met", "missed"
    );
    for permil in [1000u32, 800, 600, 400, auto.speed_permil()] {
        let mut policy = MkssDpDvs::with_speed(&ts, permil)?;
        let report = simulate(&ts, &mut policy, &config);
        assert!(report.mk_assured());
        println!(
            "{:>7}‰ {:>14} {:>10} {:>10}",
            permil,
            report.active_energy().to_string(),
            report.stats.met,
            report.stats.missed
        );
    }

    // Compare against the paper's schemes on the same set.
    println!();
    for kind in [
        PolicyKind::Static,
        PolicyKind::DualPriority,
        PolicyKind::Selective,
    ] {
        let mut policy = kind.build(&ts, &BuildOptions::default())?;
        let report = simulate(&ts, policy.as_mut(), &config);
        println!("{:>20}: {}", report.policy, report.active_energy());
    }
    Ok(())
}
