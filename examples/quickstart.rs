//! Quickstart: define a task set, check schedulability, and compare the
//! three standby-sparing schemes on energy.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use mkss::obs::EchoRecorder;
use mkss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // MKSS_LOG=summary prints an engine-event counter table at the end;
    // MKSS_LOG=events additionally narrates each event on stderr.
    let log = LogLevel::from_env()?;
    let registry = log.enabled().then(|| Arc::new(Registry::new(1)));
    let mut ws = SimWorkspace::new();
    if let Some(registry) = &registry {
        let recorder: Arc<dyn Recorder> = match log {
            LogLevel::Events => Arc::new(EchoRecorder::new(
                registry.handle_at(0),
                Arc::new(Reporter::stderr()),
            )),
            _ => Arc::new(registry.handle_at(0)),
        };
        ws.set_recorder(Some(recorder));
    }

    // A task is (period, deadline, WCET, m, k): at least m of any k
    // consecutive jobs must complete by their deadlines. This is the
    // paper's Section III example set.
    let ts = TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4)?,
        Task::from_ms(10, 10, 3, 1, 2)?,
    ])?;
    println!("{ts}");
    println!("(m,k)-utilization: {:.3}", ts.mk_utilization());

    // Offline analysis.
    println!(
        "schedulable under R-pattern: {}",
        is_schedulable_r_pattern(&ts)
    );
    let post = postponement_intervals(&ts, PostponeConfig::default())?;
    for (id, _) in ts.iter() {
        println!(
            "  {id}: promotion Y = {}, postponement θ = {}",
            post.promotion[id.0], post.theta[id.0]
        );
    }

    // Simulate one hyperperiod with active-energy accounting.
    let horizon = ts.hyperperiod();
    let config = SimConfig::active_only(horizon);

    for kind in PolicyKind::PAPER {
        let mut policy = kind.build(&ts, &BuildOptions::default())?;
        let report = simulate_in(&mut ws, &ts, policy.as_mut(), &config);
        println!(
            "\n{}: active energy {} over {horizon}, met {} / missed {}, (m,k) assured: {}",
            report.policy,
            report.active_energy(),
            report.stats.met,
            report.stats.missed,
            report.mk_assured(),
        );
        if let Some(trace) = &report.trace {
            print!("{}", trace.render_gantt_ms(horizon));
        }
    }
    if let Some(registry) = &registry {
        print!("\n{}", MetricsDoc::new(registry.snapshot()).render_table());
    }
    Ok(())
}
