//! Reproduces the paper's motivating examples (Section III, Figs. 1–4):
//!
//! * Fig. 1 — preference-oriented dual-priority on τ1 = (5,4,3,2,4),
//!   τ2 = (10,10,3,1,2): 15 active energy units in [0, 20).
//! * Fig. 2 — dynamic patterns with FD = 1 optional execution on the
//!   primary: 12 units (−20%).
//! * Fig. 3 — the greedy strawman on τ1 = (5,2.5,2,2,4),
//!   τ2 = (4,4,2,2,4): executes an excessive number of optional jobs.
//! * Fig. 4 — the selective scheme on the same set: 14 units.
//!
//! ```text
//! cargo run --example motivating_figures
//! ```

use mkss::prelude::*;

fn show(title: &str, ts: &TaskSet, policy: &mut dyn Policy, until: Time) {
    let report = simulate(ts, policy, &SimConfig::active_only(until));
    println!("== {title} ==");
    println!(
        "policy {}: active energy {} in [0, {until}), (m,k) assured: {}",
        report.policy,
        report.active_energy(),
        report.mk_assured()
    );
    print!(
        "{}",
        report.trace.expect("trace recorded").render_gantt_ms(until)
    );
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figures 1 and 2 share this set.
    let fig1_set = TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4)?,
        Task::from_ms(10, 10, 3, 1, 2)?,
    ])?;

    show(
        "Fig. 1: MKSS_DP (preference-oriented, dual priority) — paper: 15 units",
        &fig1_set,
        &mut MkssDp::new(&fig1_set)?,
        Time::from_ms(20),
    );

    let mut fig2_policy = DynamicPolicy::with_config(
        "fig2_dynamic",
        &fig1_set,
        DynamicConfig {
            selection: SelectionRule::FdExactlyOne,
            placement: OptionalPlacement::PrimaryOnly,
            backup_delay: BackupDelay::Promotion,
        },
    )?;
    show(
        "Fig. 2: dynamic patterns, FD=1 optional jobs on the primary — paper: 12 units",
        &fig1_set,
        &mut fig2_policy,
        Time::from_ms(20),
    );

    // Figures 3 and 4 share this set (τ1 deadline is 2.5 ms).
    let fig3_set = TaskSet::new(vec![
        Task::new(
            Time::from_ms(5),
            Time::from_us(2_500),
            Time::from_ms(2),
            2,
            4,
        )?,
        Task::from_ms(4, 4, 2, 2, 4)?,
    ])?;

    show(
        "Fig. 3: greedy execution of all optional jobs — paper: 20 units",
        &fig3_set,
        &mut DynamicPolicy::greedy(&fig3_set)?,
        Time::from_ms(25),
    );

    show(
        "Fig. 4: MKSS_selective (FD=1, alternating processors) — paper: 14 units",
        &fig3_set,
        &mut MkssSelective::new(&fig3_set)?,
        Time::from_ms(25),
    );

    Ok(())
}
