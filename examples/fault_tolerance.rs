//! Demonstrates the fault-tolerance guarantees: one permanent processor
//! fault at an arbitrary instant plus transient faults on job executions,
//! with the (m,k)-deadlines still assured by the selective scheme.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use std::sync::Arc;

use mkss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4)?,
        Task::from_ms(10, 10, 3, 1, 2)?,
    ])?;
    let horizon = Time::from_ms(100);

    // MKSS_LOG=summary aggregates every scenario's engine events into one
    // registry and prints the counter table at the end. (`events` would
    // narrate the 200-scenario sweep line by line — too chatty here, so
    // this example deliberately stops at counting.)
    let log = LogLevel::from_env()?;
    let registry = log.enabled().then(|| Arc::new(Registry::new(1)));
    let mut ws = SimWorkspace::new();
    if let Some(registry) = &registry {
        ws.set_recorder(Some(Arc::new(registry.handle_at(0))));
    }

    // Scenario 1: permanent fault on the primary at t = 7 ms.
    let config = SimConfig::builder()
        .horizon(horizon)
        .active_only()
        .faults(FaultConfig::permanent(ProcId::PRIMARY, Time::from_ms(7)))
        .build();
    let mut policy = MkssSelective::new(&ts)?;
    let report = simulate_in(&mut ws, &ts, &mut policy, &config);
    println!("== permanent fault on the primary at 7ms ==");
    println!(
        "copies lost: {}, jobs met: {}, missed: {}, (m,k) assured: {}",
        report.stats.copies_lost,
        report.stats.met,
        report.stats.missed,
        report.mk_assured()
    );
    print!(
        "{}",
        report
            .trace
            .as_ref()
            .expect("trace")
            .render_gantt_ms(Time::from_ms(30))
    );

    // Scenario 2: aggressive transient faults (rate 0.05/ms — about 14%
    // per 3ms execution; the paper's evaluation rate is a negligible
    // 1e-6). Backups re-execute faulted mains; (m,k) still holds.
    let config = SimConfig::builder()
        .horizon(horizon)
        .active_only()
        .faults(FaultConfig::transient(0.05, 42))
        .build();
    let mut policy = MkssSelective::new(&ts)?;
    let report = simulate_in(&mut ws, &ts, &mut policy, &config);
    println!("\n== transient faults at 0.05/ms ==");
    println!(
        "transient faults: {}, backups completed: {}, backups canceled: {}, \
         met: {}, missed: {}, (m,k) assured: {}",
        report.stats.transient_faults,
        report.stats.backups_completed,
        report.stats.backups_canceled,
        report.stats.met,
        report.stats.missed,
        report.mk_assured()
    );

    // Scenario 3: both at once, swept over every fault instant.
    println!("\n== sweep: permanent fault at every ms on either processor + transients ==");
    let mut worst_missed = 0;
    let mut all_assured = true;
    for at in 0..100 {
        for proc in ProcId::ALL {
            let config = SimConfig::builder()
                .horizon(horizon)
                .faults(FaultConfig::combined(proc, Time::from_ms(at), 0.01, at))
                .build();
            let mut policy = MkssSelective::new(&ts)?;
            let report = simulate_in(&mut ws, &ts, &mut policy, &config);
            worst_missed = worst_missed.max(report.stats.missed);
            all_assured &= report.mk_assured();
        }
    }
    println!("200 fault scenarios simulated; all (m,k) assured: {all_assured}; worst missed-count: {worst_missed}");
    if let Some(registry) = &registry {
        print!("\n{}", MetricsDoc::new(registry.snapshot()).render_table());
    }
    Ok(())
}
