//! Where does the energy go? Per-task schedule metrics comparing the
//! schemes' duplication overhead: the dual-priority scheme wastes energy
//! on backup work that is later canceled, while the selective scheme
//! replaces duplicated mandatory jobs with single-copy optional ones.
//!
//! ```text
//! cargo run --example schedule_metrics
//! ```

use mkss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4)?,
        Task::from_ms(10, 10, 3, 1, 2)?,
    ])?;
    let horizon = Time::from_ms(200);
    let config = SimConfig::active_only(horizon);

    for kind in [
        PolicyKind::Static,
        PolicyKind::DualPriority,
        PolicyKind::Selective,
    ] {
        let mut policy = kind.build(&ts, &BuildOptions::default())?;
        let report = simulate(&ts, policy.as_mut(), &config);
        let metrics = analyze_trace(&ts, report.trace.as_ref().expect("trace"));
        println!("== {} ==", report.policy);
        println!(
            "total energy {}, of which canceled-backup waste {}",
            report.active_energy(),
            metrics.total_canceled_backup_work()
        );
        println!(
            "{:>6} {:>5} {:>6} {:>11} {:>10} {:>11} {:>13} {:>12}",
            "task",
            "met",
            "miss",
            "worst resp",
            "mean resp",
            "main busy",
            "backup busy",
            "opt busy"
        );
        for row in &metrics.per_task {
            println!(
                "{:>6} {:>5} {:>6} {:>11} {:>10.2} {:>11} {:>13} {:>12}",
                row.task.to_string(),
                row.met,
                row.missed,
                row.worst_response.to_string(),
                row.mean_response_ms(),
                row.main_busy.to_string(),
                row.backup_busy.to_string(),
                row.optional_busy.to_string(),
            );
        }
        println!();
    }
    Ok(())
}
