//! Exports a schedule trace as a VCD waveform, viewable in GTKWave or any
//! other VCD viewer — handy for inspecting multi-hyperperiod schedules.
//!
//! ```text
//! cargo run --example waveform
//! gtkwave mkss_selective.vcd
//! ```

use mkss::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4)?,
        Task::from_ms(10, 10, 3, 1, 2)?,
    ])?;
    let horizon = Time::from_ms(60);
    let config = SimConfig::active_only(horizon);
    let mut policy = MkssSelective::new(&ts)?;
    let report = simulate(&ts, &mut policy, &config);
    let trace = report.trace.as_ref().expect("trace recorded");

    let vcd = render_vcd(trace, ts.len());
    let path = "mkss_selective.vcd";
    std::fs::write(path, &vcd)?;
    println!(
        "wrote {path}: {} segments, {} job resolutions over {horizon}",
        trace.segments.len(),
        trace.resolutions.len(),
    );
    println!("preview:\n{}", trace.render_gantt_ms(Time::from_ms(30)));
    Ok(())
}
