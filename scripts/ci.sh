#!/usr/bin/env bash
# Local CI gate: formatting, lints on the experiment-pipeline crates, and
# the tier-1 test surface (ROADMAP.md). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (check) =="
cargo fmt --check -p mkss-core -p mkss-workload -p mkss-bench -p mkss-cli

echo "== clippy (deny warnings) =="
cargo clippy -p mkss-core -p mkss-workload -p mkss-bench -p mkss-cli \
    --all-targets -- -D warnings

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== examples build =="
cargo build --examples

echo "== bench smoke (each benchmark runs once) =="
cargo bench -p mkss-bench --benches -- --test

echo "CI gate passed."
