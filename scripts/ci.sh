#!/usr/bin/env bash
# Local CI gate: formatting, lints on the experiment-pipeline crates, and
# the tier-1 test surface (ROADMAP.md). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (check, whole workspace) =="
cargo fmt --check --all

echo "== mkss-lint (project invariants, hard gate) =="
cargo run --release -q -p mkss-lint

echo "== mkss-lint smoke (must reject a known-bad file) =="
lint_tmp="$(mktemp -d)"
mkdir -p "$lint_tmp/crates/core/src"
printf 'pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n' \
    > "$lint_tmp/crates/core/src/bad.rs"
if cargo run --release -q -p mkss-lint -- --root "$lint_tmp" \
    "$lint_tmp/crates/core/src/bad.rs" 2>/dev/null; then
    echo "ERROR: mkss-lint exited 0 on a file with a known violation" >&2
    rm -rf "$lint_tmp"
    exit 1
fi
rm -rf "$lint_tmp"
echo "bad-file smoke ok (nonzero exit as expected)"

echo "== clippy (deny warnings, whole workspace) =="
cargo clippy -p mkss-core -p mkss-workload -p mkss-obs -p mkss-bench \
    -p mkss-cli -p mkss-sim -p mkss-policies -p mkss-analysis \
    -p mkss-lint -p mkss --all-targets -- -D warnings

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== examples build =="
cargo build --examples

echo "== bench smoke (each benchmark runs once) =="
cargo bench -p mkss-bench --benches -- --test

echo "== metrics export smoke (mkss-cli compare --metrics-out) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p mkss-cli -- generate --util 0.4 --seed 11 \
    > "$tmpdir/set.json"
cargo run --release -q -p mkss-cli -- compare "$tmpdir/set.json" \
    --horizon-ms 200 --metrics-out "$tmpdir/metrics.json" > /dev/null
python3 - "$tmpdir/metrics.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
missing = [k for k in ("meta", "counters", "histograms", "stages") if k not in doc]
assert not missing, f"metrics document missing top-level keys: {missing}"
for key in ("jobs_released", "backups_canceled", "backups_postponed",
            "optional_executed", "faults_injected"):
    assert key in doc["counters"], f"missing counter {key}"
assert doc["counters"]["jobs_released"] > 0, "compare smoke released no jobs"
print("metrics document ok:", ", ".join(sorted(doc)))
PY

echo "== sim_bench drift check (warn-only) =="
cargo run --release -q -p mkss-bench --bin sim_bench -- \
    --sets 4 --reps 2 --out "$tmpdir/bench.json" 2>/dev/null
python3 - "$tmpdir/bench.json" BENCH_sim.json <<'PY'
import json, sys
now = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))
# jobs_per_second is roughly invariant to the shortened --sets/--reps, so
# it is comparable against the tracked baseline. Report (never fail) on a
# >25% drop: shared-machine noise makes this a tripwire, not a gate.
for path in ("fresh", "reuse"):
    measured = now[path]["jobs_per_second"]
    reference = baseline[path]["jobs_per_second"]
    if measured < 0.75 * reference:
        print(f"WARNING: {path} throughput {measured:,.0f} jobs/s is >25% "
              f"below the BENCH_sim.json baseline {reference:,.0f} jobs/s")
    else:
        print(f"{path}: {measured:,.0f} jobs/s (baseline {reference:,.0f}: ok)")
PY

echo "CI gate passed."
