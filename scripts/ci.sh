#!/usr/bin/env bash
# Local CI gate: formatting, lints on the experiment-pipeline crates, and
# the tier-1 test surface (ROADMAP.md). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (check, whole workspace) =="
cargo fmt --check --all

echo "== mkss-lint (project invariants, hard gate) =="
# Full run against the checked-in baseline (empty at merge; see
# DIAGNOSTICS.md), emitting the machine-readable report, whose shape is
# then validated through an independent JSON parser.
cargo run --release -q -p mkss-lint -- --baseline lint-baseline.txt \
    --format json --out lint-report.json
python3 - lint-report.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == 1, f"unknown report version {doc['version']}"
assert isinstance(doc["findings"], list), "findings must be a list"
for f in doc["findings"]:
    for key in ("path", "line", "code", "rule", "message"):
        assert key in f, f"finding missing {key}: {f}"
    assert f["code"].startswith("MKSS-L"), f["code"]
counts = doc["counts"]
for key in ("findings", "suppressed", "baselined", "files"):
    assert isinstance(counts.get(key), int), f"counts missing {key}"
assert counts["findings"] == len(doc["findings"])
assert counts["files"] > 50, f"suspiciously few files linted: {counts['files']}"
print(f"lint report ok: {counts['findings']} findings, "
      f"{counts['suppressed']} suppressed, {counts['files']} files")
PY

echo "== mkss-lint smoke (must reject a known-bad file) =="
lint_tmp="$(mktemp -d)"
mkdir -p "$lint_tmp/crates/core/src"
printf 'pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n' \
    > "$lint_tmp/crates/core/src/bad.rs"
if cargo run --release -q -p mkss-lint -- --root "$lint_tmp" \
    "$lint_tmp/crates/core/src/bad.rs" 2>/dev/null; then
    echo "ERROR: mkss-lint exited 0 on a file with a known violation" >&2
    rm -rf "$lint_tmp"
    exit 1
fi
rm -rf "$lint_tmp"
echo "bad-file smoke ok (nonzero exit as expected)"

echo "== clippy (deny warnings, whole workspace) =="
cargo clippy -p mkss-core -p mkss-workload -p mkss-obs -p mkss-bench \
    -p mkss-cli -p mkss-sim -p mkss-policies -p mkss-analysis \
    -p mkss-serve -p mkss-top -p mkss-lint -p mkss --all-targets -- -D warnings

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== examples build =="
cargo build --examples

echo "== bench smoke (each benchmark runs once) =="
cargo bench -p mkss-bench --benches -- --test

echo "== metrics export smoke (mkss-cli compare --metrics-out) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p mkss-cli -- generate --util 0.4 --seed 11 \
    > "$tmpdir/set.json"
cargo run --release -q -p mkss-cli -- compare "$tmpdir/set.json" \
    --horizon-ms 200 --metrics-out "$tmpdir/metrics.json" > /dev/null
python3 - "$tmpdir/metrics.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
missing = [k for k in ("meta", "counters", "histograms", "stages") if k not in doc]
assert not missing, f"metrics document missing top-level keys: {missing}"
for key in ("jobs_released", "backups_canceled", "backups_postponed",
            "optional_executed", "faults_injected"):
    assert key in doc["counters"], f"missing counter {key}"
assert doc["counters"]["jobs_released"] > 0, "compare smoke released no jobs"
print("metrics document ok:", ", ".join(sorted(doc)))
PY

echo "== trace smoke (flight recorder: deterministic Chrome-trace export) =="
# Two captures of the same workload with different worker counts must be
# byte-identical (one flight recorder per policy, export a pure function
# of the buffers), and the file must be well-formed Chrome Trace JSON.
cargo run --release -q -p mkss-cli -- compare "$tmpdir/set.json" \
    --horizon-ms 200 --jobs 1 --trace-out "$tmpdir/trace1.json" > /dev/null
cargo run --release -q -p mkss-cli -- compare "$tmpdir/set.json" \
    --horizon-ms 200 --jobs 4 --trace-out "$tmpdir/trace2.json" > /dev/null
cmp "$tmpdir/trace1.json" "$tmpdir/trace2.json" || {
    echo "ERROR: trace export differs across --jobs values" >&2
    exit 1
}
python3 - "$tmpdir/trace1.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "trace has no events"
phases = {e["ph"] for e in events}
assert {"M", "i", "b", "e"} <= phases, f"missing phase kinds: {phases}"
for e in events:
    assert "pid" in e, f"event missing pid: {e}"
    if e["ph"] != "M":
        # Timed events always carry a thread and a timestamp; "M"
        # metadata names a process (pid only) or a thread (pid+tid).
        assert "tid" in e, f"timed event missing tid: {e}"
        assert "ts" in e, f"timed event missing ts: {e}"
opens = sum(1 for e in events if e["ph"] == "b")
closes = sum(1 for e in events if e["ph"] == "e")
assert opens == closes, f"unbalanced async spans: {opens} b vs {closes} e"
tracks = {e["args"]["name"] for e in events
          if e["ph"] == "M" and e["name"] == "process_name"}
assert len(tracks) > 1, f"expected one track per policy, got {tracks}"
print(f"chrome trace ok: {len(events)} events, {opens} spans, "
      f"{len(tracks)} policy tracks")
PY
# The recorder-off hot path must still allocate nothing.
cargo test --release -q -p mkss-sim --test zero_alloc

echo "== serve smoke (daemon end-to-end: loadgen differential + clean shutdown) =="
# Start the daemon, drive it with concurrent clients re-deriving every
# response in-process (--differential fails on any byte mismatch), ask it
# to drain, and require a clean exit.
serve_sock="$tmpdir/serve.sock"
cargo run --release -q -p mkss-cli -- serve --socket "$serve_sock" \
    > "$tmpdir/serve-stdout.txt" 2> "$tmpdir/serve-stderr.txt" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$serve_sock" ] && break
    sleep 0.1
done
if [ ! -S "$serve_sock" ]; then
    echo "ERROR: daemon socket $serve_sock never appeared" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# One simulate with `"trace": {"last": N}` through the daemon: the
# response line must embed a bounded, well-formed event timeline.
python3 - "$serve_sock" <<'PY'
import json, socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
req = {"id": 1, "op": "simulate",
       "task_set": {"tasks": [
           {"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4},
           {"period_ms": 10, "wcet_ms": 3, "m": 1, "k": 2}]},
       "policy": "selective", "horizon_ms": 100, "trace": {"last": 32}}
s.sendall((json.dumps(req) + "\n").encode())
line = b""
while not line.endswith(b"\n"):
    chunk = s.recv(65536)
    assert chunk, "daemon closed the connection mid-response"
    line += chunk
s.close()
resp = json.loads(line)
assert resp["ok"], resp
trace = resp["result"]["trace"]
assert trace["capacity"] == 32, trace["capacity"]
assert 0 < len(trace["events"]) <= 32, len(trace["events"])
assert trace["recorded"] == len(trace["events"]) + trace["dropped"]
for e in trace["events"]:
    for key in ("t", "seq", "kind", "task", "job", "copy", "payload"):
        assert key in e, f"trace event missing {key}: {e}"
seqs = [e["seq"] for e in trace["events"]]
assert seqs == sorted(seqs), "trace events out of sequence order"
print(f"serve trace ok: {len(trace['events'])} events embedded, "
      f"{trace['dropped']} dropped by the ring")
PY
cargo run --release -q -p mkss-bench --bin loadgen -- \
    --socket "$serve_sock" --clients 4 --requests 16 --differential --shutdown
wait "$serve_pid"
grep -q "shut down cleanly" "$tmpdir/serve-stdout.txt" || {
    echo "ERROR: daemon did not report a clean shutdown" >&2
    cat "$tmpdir/serve-stdout.txt" "$tmpdir/serve-stderr.txt" >&2
    exit 1
}
grep -q "serve_requests" "$tmpdir/serve-stdout.txt" || {
    echo "ERROR: daemon totals table missing serve counters" >&2
    exit 1
}
echo "serve smoke ok (64 differential responses, clean drain)"

echo "== mkss-top smoke (headless dashboard vs metrics op, hard gate) =="
# Boot a fresh daemon, hammer it with loadgen, capture a short plain
# dashboard session, then fetch the metrics op and require the final
# frame's counter totals to match the daemon's own document
# counter-for-counter — the live path must not drop or invent events.
top_sock="$tmpdir/top.sock"
cargo run --release -q -p mkss-cli -- serve --socket "$top_sock" \
    > "$tmpdir/top-serve-stdout.txt" 2> "$tmpdir/top-serve-stderr.txt" &
top_serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$top_sock" ] && break
    sleep 0.1
done
if [ ! -S "$top_sock" ]; then
    echo "ERROR: daemon socket $top_sock never appeared" >&2
    kill "$top_serve_pid" 2>/dev/null || true
    exit 1
fi
cargo run --release -q -p mkss-bench --bin loadgen -- \
    --socket "$top_sock" --clients 4 --requests 8
cargo run --release -q -p mkss-cli -- top --socket "$top_sock" \
    --frames 3 --plain --interval-ms 50 > "$tmpdir/top.txt"
cargo run --release -q -p mkss-cli -- metrics --socket "$top_sock" --json \
    > "$tmpdir/top-metrics.json"
python3 - "$tmpdir/top.txt" "$tmpdir/top-metrics.json" <<'PY'
import json, sys
frames = open(sys.argv[1]).read()
doc = json.load(open(sys.argv[2]))
assert "watched 3 frames from daemon" in frames, frames.splitlines()[-1:]
# Counter rows of the *final* frame: after the last "counters:" header,
# up to its "histograms:" header. Columns: name, total, +delta, rate.
section = frames.rsplit("counters:", 1)[1].split("histograms:", 1)[0]
totals = {}
for line in section.strip().splitlines():
    name, total = line.split()[:2]
    totals[name] = int(total)
assert totals, "no counter rows parsed from the final frame"
daemon = doc["counters"]
assert set(totals) == set(daemon), (
    f"counter catalogs diverge: {set(totals) ^ set(daemon)}")
diverged = {k: (totals[k], daemon[k]) for k in daemon if totals[k] != daemon[k]}
assert not diverged, f"dashboard diverged from the metrics op: {diverged}"
assert daemon["serve_op_simulate"] > 0, "loadgen traffic missing from counters"
assert daemon["serve_watches"] == 1, "the top session should count one watch"
print(f"dashboard consistent: {len(daemon)} counters, "
      f"{daemon['serve_requests']} pooled requests")
PY
# An unbounded watcher must be closed by the shutdown drain: start one in
# the background, drain the daemon, and require the watcher to exit too.
cargo run --release -q -p mkss-cli -- top --socket "$top_sock" \
    --plain --interval-ms 200 > "$tmpdir/top-unbounded.txt" &
top_watch_pid=$!
sleep 1
cargo run --release -q -p mkss-bench --bin loadgen -- \
    --socket "$top_sock" --clients 1 --requests 1 --shutdown
wait "$top_serve_pid"
wait "$top_watch_pid"
grep -q "watched .* frames from daemon" "$tmpdir/top-unbounded.txt" || {
    echo "ERROR: unbounded watcher did not exit cleanly on daemon drain" >&2
    cat "$tmpdir/top-unbounded.txt" >&2
    exit 1
}
grep -q "shut down cleanly" "$tmpdir/top-serve-stdout.txt" || {
    echo "ERROR: daemon with an attached watcher did not drain cleanly" >&2
    cat "$tmpdir/top-serve-stdout.txt" "$tmpdir/top-serve-stderr.txt" >&2
    exit 1
}
echo "mkss-top smoke ok (frame totals match the metrics op, drain closes watchers)"

echo "== sim_bench drift check (hard gate) =="
# A >25% drop below the tracked BENCH_sim.json baseline fails CI. Both
# sides are best-of measurements: sim_bench keeps the best of its reps,
# and the gate keeps each path's best over up to 3 attempts, so a
# transient load spike on a shared machine has to survive every attempt
# before it can fail the build. Escape hatch for machines that stay
# saturated (or while intentionally re-baselining):
#   MKSS_BENCH_ALLOW_DRIFT=1 scripts/ci.sh
# downgrades the failure back to a warning. To re-baseline after a real,
# intended performance change, record a fresh full run on an otherwise
# idle machine and commit it:
#   cargo run --release -p mkss-bench --bin sim_bench -- --out BENCH_sim.json
drift_status=1
for attempt in 1 2 3; do
    cargo run --release -q -p mkss-bench --bin sim_bench -- \
        --out "$tmpdir/bench$attempt.json" 2>/dev/null
    if python3 - BENCH_sim.json "$tmpdir"/bench*.json <<'PY'
import json, sys
baseline = json.load(open(sys.argv[1]))
attempts = [json.load(open(p)) for p in sys.argv[2:]]
ok = True
for path in ("fresh", "reuse"):
    measured = max(a[path]["jobs_per_second"] for a in attempts)
    reference = baseline[path]["jobs_per_second"]
    if measured < 0.75 * reference:
        ok = False
        print(f"{path}: best {measured:,.0f} jobs/s is >25% below the "
              f"BENCH_sim.json baseline {reference:,.0f} jobs/s")
    else:
        print(f"{path}: {measured:,.0f} jobs/s (baseline {reference:,.0f}: ok)")
sys.exit(0 if ok else 1)
PY
    then
        drift_status=0
        break
    fi
    echo "drift check attempt $attempt/3 below threshold, retrying"
done
if [ "$drift_status" -ne 0 ]; then
    if [ "${MKSS_BENCH_ALLOW_DRIFT:-0}" = "1" ]; then
        echo "WARNING: sim_bench drift gate failed (allowed by MKSS_BENCH_ALLOW_DRIFT=1)"
    else
        echo "ERROR: sim_bench drift gate failed on every attempt; see scripts/ci.sh" \
             "for the MKSS_BENCH_ALLOW_DRIFT escape hatch and re-baseline procedure" >&2
        exit 1
    fi
fi

echo "CI gate passed."
