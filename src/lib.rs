//! # mkss — reliable, energy-aware (m,k)-firm standby-sparing scheduling
//!
//! A full reproduction of *Niu & Zhu, "Reliable and Energy-Aware
//! Fixed-Priority (m,k)-Deadlines Enforcement with Standby-Sparing",
//! DATE 2020*, as a family of Rust crates, re-exported here as one
//! facade:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `mkss-core` | tasks `(P,D,C,m,k)`, jobs, patterns, flexibility degree, (m,k) monitor |
//! | [`analysis`] | `mkss-analysis` | response-time analysis, promotion times `Y`, postponement intervals `θ` |
//! | [`sim`] | `mkss-sim` | deterministic dual-processor simulator: MJQ/OJQ dispatch, faults, DPD energy |
//! | [`policies`] | `mkss-policies` | `MKSS_ST`, `MKSS_DP`, `MKSS_selective`, greedy + ablation variants |
//! | [`workload`] | `mkss-workload` | the Section-V random task-set generator |
//! | [`obs`] | `mkss-obs` | zero-dep observability: engine-event recorders, counter/histogram registry, metrics export |
//! | [`serve`] | `mkss-serve` | session-pooled simulation daemon: line-JSON protocol over Unix/TCP sockets, bounded worker pool, per-request metrics |
//! | [`top`] | `mkss-top` | live terminal dashboard: deterministic frame model over daemon `watch` streams or in-process registries, plain/ANSI renderers |
//!
//! ## Quickstart
//!
//! ```
//! use mkss::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Section III motivating task set: (P, D, C, m, k).
//! let ts = TaskSet::new(vec![
//!     Task::from_ms(5, 4, 3, 2, 4)?,
//!     Task::from_ms(10, 10, 3, 1, 2)?,
//! ])?;
//!
//! // Offline analysis: schedulable under the R-pattern?
//! assert!(is_schedulable_r_pattern(&ts));
//!
//! // Simulate the paper's three schemes over one hyperperiod and
//! // compare active energy (the numbers of Figs. 1–2).
//! let config = SimConfig::active_only(Time::from_ms(20));
//! let st = simulate(&ts, &mut MkssSt::new(), &config);
//! let dp = simulate(&ts, &mut MkssDp::new(&ts)?, &config);
//! let sel = simulate(&ts, &mut MkssSelective::new(&ts)?, &config);
//!
//! assert_eq!(st.active_energy().units(), 18.0);
//! assert_eq!(dp.active_energy().units(), 15.0); // Fig. 1
//! assert!(sel.active_energy().units() < 15.0);
//! assert!(st.mk_assured() && dp.mk_assured() && sel.mk_assured());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mkss_analysis as analysis;
pub use mkss_core as core;
pub use mkss_obs as obs;
pub use mkss_policies as policies;
pub use mkss_serve as serve;
pub use mkss_sim as sim;
pub use mkss_top as top;
pub use mkss_workload as workload;

/// One-stop import of the most commonly used items from every crate.
pub mod prelude {
    pub use mkss_analysis::prelude::*;
    pub use mkss_core::prelude::*;
    pub use mkss_obs::{
        CounterId, HistogramId, LogLevel, MetricsDoc, NoopRecorder, Recorder, Registry, Reporter,
    };
    pub use mkss_policies::{
        BackupDelay, BuildOptions, BuildPolicyError, DynamicConfig, DynamicPolicy, MainPlacement,
        MkssDp, MkssDpDvs, MkssSelective, MkssSt, MkssStRotated, OptionalPlacement,
        ParsePolicyKindError, PolicyKind, SelectionRule,
    };
    pub use mkss_sim::metrics::{analyze_trace, TraceMetrics};
    pub use mkss_sim::prelude::*;
    pub use mkss_sim::vcd::render_vcd;
    pub use mkss_workload::{generate_buckets, Bucket, BucketPlan, Generator, WorkloadConfig};
}
